"""Bathymetry profiles: positivity, morphology, determinism, scaling."""

import numpy as np
import pytest

from repro.ocean.bathymetry import (
    CascadiaBathymetry,
    FlatBathymetry,
    GaussianRidgeBathymetry,
)


class TestFlat:
    def test_constant(self):
        b = FlatBathymetry(depth=2.0)
        x = np.linspace(0, 10, 7)
        np.testing.assert_allclose(b(x), 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlatBathymetry(depth=0.0)


class TestRidge:
    def test_shallower_at_center(self):
        b = GaussianRidgeBathymetry(depth=1.0, ridge_height=0.4, center=0.5, width=0.1)
        assert b(np.array([0.5]))[0] == pytest.approx(0.6)
        assert b(np.array([0.0]))[0] == pytest.approx(1.0, abs=1e-4)

    def test_ridge_must_not_breach(self):
        with pytest.raises(ValueError):
            GaussianRidgeBathymetry(depth=1.0, ridge_height=1.0)


class TestCascadia:
    def test_morphology_abyss_to_shelf(self):
        b = CascadiaBathymetry()
        x = np.linspace(0, b.length_x, 500)
        d = b(x)
        assert np.all(d > 0)
        # abyssal plain offshore, shallow shelf shoreward
        assert d[0] > 2000.0
        assert d[-1] < 400.0
        # trench deepening near the deformation front
        trench_zone = d[(x > 0.1 * b.length_x) & (x < 0.3 * b.length_x)]
        assert trench_zone.max() > d[0]

    def test_monotone_slope_region(self):
        b = CascadiaBathymetry(roughness=0.0)
        x = np.linspace(0.45 * b.length_x, 0.75 * b.length_x, 100)
        d = b(x)
        assert np.all(np.diff(d) < 0)  # shoaling toward the coast

    def test_along_margin_variation_in_3d(self):
        b = CascadiaBathymetry(length_y=300_000.0, along_margin_variation=0.08)
        x = np.full(5, 0.6 * b.length_x)
        y = np.linspace(0, 300_000.0, 5)
        d = b(x, y)
        assert np.ptp(d) > 50.0  # the slope position bends along margin

    def test_roughness_deterministic(self):
        b1 = CascadiaBathymetry(roughness=0.05, seed=3)
        b2 = CascadiaBathymetry(roughness=0.05, seed=3)
        b3 = CascadiaBathymetry(roughness=0.05, seed=4)
        x = np.linspace(0, b1.length_x, 50)
        np.testing.assert_array_equal(b1(x), b2(x))
        assert not np.allclose(b1(x), b3(x))

    def test_roughness_positivity_guard(self):
        b = CascadiaBathymetry(roughness=0.3, seed=0)
        x = np.linspace(0, b.length_x, 2000)
        assert np.all(b(x) >= 0.5 * b.shelf_depth - 1e-9)

    def test_scaled_similarity(self):
        b = CascadiaBathymetry()
        s = b.scaled(length_x=10.0, depth_scale=1e-3)
        x = np.linspace(0, 10.0, 50)
        xs = x / 10.0 * b.length_x
        np.testing.assert_allclose(s(x), 1e-3 * b(xs), rtol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            CascadiaBathymetry(shelf_depth=3000.0, abyssal_depth=2800.0)
        with pytest.raises(ValueError):
            CascadiaBathymetry(roughness=0.7)
