"""Observation operators: placement, interpolation exactness, adjoint seeds."""

import numpy as np
import pytest

from repro.ocean.observations import SensorArray, SurfaceQoI


class TestSensorArray:
    def test_regular_layout_respects_margin(self, op2d):
        s = SensorArray.regular(op2d, 6, margin=0.1)
        lo, hi = op2d.mesh.bounding_box()
        span = hi[0] - lo[0]
        assert s.n == 6
        assert s.positions.min() >= lo[0] + 0.1 * span - 1e-12
        assert s.positions.max() <= hi[0] - 0.1 * span + 1e-12

    def test_random_layout_deterministic(self, op2d):
        a = SensorArray.random(op2d, 5, seed=1)
        b = SensorArray.random(op2d, 5, seed=1)
        c = SensorArray.random(op2d, 5, seed=2)
        np.testing.assert_array_equal(a.positions, b.positions)
        assert not np.allclose(a.positions, c.positions)

    def test_pressure_interpolation_exact(self, op2d):
        s = SensorArray(op2d, np.array([[1.1], [2.9]]))
        c = op2d.h1.dof_coords
        p = 3.0 - 0.7 * c[:, 0] + 1.2 * c[:, 1]
        vals = s.observe_pressure(p)
        # sensors sit on the (polygonal) bottom boundary
        x = np.array([1.1, 2.9])
        verts = op2d.mesh.axes[0]
        zb = np.interp(x, verts, op2d.mesh.vertices[:, 0, 1])
        np.testing.assert_allclose(vals, 3.0 - 0.7 * x + 1.2 * zb, atol=1e-10)

    def test_observe_state_reads_pressure_block(self, op2d, sensors2d, rng):
        X = rng.standard_normal((op2d.nstate, 2))
        _, P = op2d.views(X)
        np.testing.assert_allclose(
            sensors2d.observe_state(X), sensors2d.matrix @ P, atol=1e-14
        )

    def test_adjoint_seed_shape_and_content(self, op2d, sensors2d):
        seed = sensors2d.adjoint_seed()
        assert seed.shape == (op2d.np_, sensors2d.n)
        np.testing.assert_allclose(seed, sensors2d.matrix.T.toarray(), atol=0)

    def test_3d_regular_grid(self, op3d):
        s = SensorArray.regular(op3d, (3, 2))
        assert s.n == 6
        assert s.positions.shape == (6, 2)


class TestSurfaceQoI:
    def test_eta_scaling(self, op2d):
        q = SurfaceQoI(op2d, np.array([[2.0]]))
        c = op2d.h1.dof_coords
        p = 5.0 + 0.0 * c[:, 0]
        # eta = p / (rho g), with rho = g = 1 nondimensional
        np.testing.assert_allclose(q.observe_pressure(p), 5.0, atol=1e-12)

    def test_coastal_placement(self, op2d):
        q = SurfaceQoI.coastal(op2d, 3, coast_fraction=0.9)
        lo, hi = op2d.mesh.bounding_box()
        assert q.n == 3
        assert np.all(q.positions <= hi[0])
        assert np.max(q.positions) >= lo[0] + 0.8 * (hi[0] - lo[0])

    def test_coastal_3d_spread_along_margin(self, op3d):
        q = SurfaceQoI.coastal(op3d, 4)
        assert q.positions.shape == (4, 2)
        assert np.ptp(q.positions[:, 1]) > 0  # spread in y

    def test_single_coastal_point(self, op2d):
        q = SurfaceQoI.coastal(op2d, 1)
        assert q.n == 1
