"""Acoustic-gravity operator: adjointness, energy identities, structure."""

import numpy as np
import pytest

from repro.ocean.acoustic_gravity import AcousticGravityOperator
from repro.ocean.material import SeawaterMaterial


def _energy_rate(op, X):
    """Exact semi-discrete energy rate <X, LX>_M."""
    U, P = op.views(X)
    LX = op.apply(X)
    LU, LP = op.views(LX)
    return float(
        np.einsum("eqdk,eq,eqdk->", U, op.Mu, LU)
        + np.einsum("nk,n,nk->", P, op.Mp, LP)
    )


class TestAdjointness:
    def test_exact_euclidean_transpose_2d(self, op2d, rng):
        X = rng.standard_normal((op2d.nstate, 3))
        Y = rng.standard_normal((op2d.nstate, 3))
        lhs = float(np.sum(op2d.apply(X) * Y))
        rhs = float(np.sum(X * op2d.apply_transpose(Y)))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_exact_euclidean_transpose_3d(self, op3d, rng):
        X = rng.standard_normal((op3d.nstate, 2))
        Y = rng.standard_normal((op3d.nstate, 2))
        lhs = float(np.sum(op3d.apply(X) * Y))
        rhs = float(np.sum(X * op3d.apply_transpose(Y)))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_forcing_adjoint(self, op2d, rng):
        m = rng.standard_normal((op2d.n_parameters, 2))
        Y = rng.standard_normal((op2d.nstate, 2))
        lhs = float(np.sum(op2d.forcing(m) * Y))
        rhs = float(np.sum(m * op2d.forcing_transpose(Y)))
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestEnergyIdentities:
    def test_skew_without_absorbing(self, mesh2d, material, rng):
        op0 = AcousticGravityOperator(mesh2d, order=3, material=material, absorbing=())
        X = rng.standard_normal((op0.nstate, 1))
        E = float(op0.energy(X)[0])
        assert abs(_energy_rate(op0, X)) < 1e-12 * E

    def test_rate_equals_absorbing_dissipation(self, op2d, rng):
        X = rng.standard_normal((op2d.nstate, 1))
        _, P = op2d.views(X)
        sa = sum(
            float(np.sum(s.values[:, None] * P[s.dofs] ** 2)) for s in op2d.Sa
        )
        E = float(op2d.energy(X)[0])
        assert _energy_rate(op2d, X) == pytest.approx(-sa, rel=1e-10)

    def test_energy_positive_definite(self, op2d, rng):
        X = rng.standard_normal((op2d.nstate, 5))
        assert np.all(op2d.energy(X) > 0)
        assert np.all(op2d.energy(np.zeros((op2d.nstate, 1))) == 0)


class TestStructure:
    def test_dof_report(self, op2d):
        rep = op2d.dof_report()
        assert rep["state_dofs"] == rep["pressure_dofs"] + rep["velocity_dofs"]
        assert rep["parameter_points"] == op2d.bottom_trace.n

    def test_views_are_views(self, op2d):
        X = op2d.zero_state(2)
        U, P = op2d.views(X)
        U += 1.0
        P += 2.0
        assert np.all(X[: op2d.nu] == 1.0)
        assert np.all(X[op2d.nu :] == 2.0)

    def test_surface_mass_added(self, mesh2d, material):
        with_surf = AcousticGravityOperator(mesh2d, order=3, material=material)
        no_surf = AcousticGravityOperator(
            mesh2d, order=3, material=material, include_surface=False
        )
        assert no_surf.surface_op is None
        dofs = with_surf.surface_op.dofs
        assert np.all(with_surf.Mp[dofs] > no_surf.Mp[dofs])
        interior = np.setdiff1d(np.arange(with_surf.np_), dofs)
        np.testing.assert_allclose(
            with_surf.Mp[interior], no_surf.Mp[interior], atol=1e-15
        )

    def test_no_bottom_forcing_mode(self, mesh2d, material):
        op = AcousticGravityOperator(
            mesh2d, order=3, material=material, include_bottom_forcing=False
        )
        assert op.R is None
        with pytest.raises(RuntimeError):
            op.forcing(np.zeros(op.n_parameters))
        # trace still available for bookkeeping
        assert op.bottom_trace.n > 0

    def test_surface_eta_scaling(self, op2d, rng):
        X = rng.standard_normal((op2d.nstate, 1))
        _, P = op2d.views(X)
        eta = op2d.surface_eta(X)
        np.testing.assert_allclose(
            eta,
            P[op2d.surface_op.dofs] / (op2d.material.rho * op2d.material.g),
            atol=1e-14,
        )

    def test_order_validation(self, mesh2d, material):
        with pytest.raises(ValueError):
            AcousticGravityOperator(mesh2d, order=1, material=material)

    def test_memory_mode_footprints(self, mesh2d, material):
        opt = AcousticGravityOperator(
            mesh2d, order=3, material=material, memory_optimized=True
        )
        unopt = AcousticGravityOperator(
            mesh2d, order=3, material=material, memory_optimized=False
        )
        # Section VII-B: the un-optimized solver keeps far more geometry.
        assert unopt.tracker.total_persistent > 2 * opt.tracker.total_persistent

    def test_kernel_variant_equivalence(self, mesh2d, material, rng):
        ref = AcousticGravityOperator(
            mesh2d, order=3, material=material, kernel_variant="optimized"
        )
        X = rng.standard_normal((ref.nstate, 2))
        Y_ref = ref.apply(X)
        for variant in ("initial", "shared", "fused", "mf"):
            op = AcousticGravityOperator(
                mesh2d, order=3, material=material, kernel_variant=variant
            )
            np.testing.assert_allclose(op.apply(X), Y_ref, atol=1e-11, err_msg=variant)

    def test_cfl_timestep_positive(self, op2d):
        dt = op2d.cfl_timestep()
        assert 0 < dt < 1.0
