"""Slot propagator: LTI structure, kernel extraction, p2o actions."""

import numpy as np
import pytest

from repro.ocean.acoustic_gravity import AcousticGravityOperator
from repro.ocean.propagator import SlotPropagator


class TestSetup:
    def test_substep_selection(self, op2d):
        p = SlotPropagator(op2d, dt_obs=0.2, n_slots=5, cfl=0.3)
        assert p.n_substeps >= 1
        assert p.dt == pytest.approx(0.2 / p.n_substeps)
        assert p.total_timesteps == 5 * p.n_substeps
        assert p.duration == pytest.approx(1.0)

    def test_explicit_substeps(self, op2d):
        p = SlotPropagator(op2d, dt_obs=0.2, n_slots=5, n_substeps=7)
        assert p.n_substeps == 7

    def test_times(self, op2d):
        p = SlotPropagator(op2d, dt_obs=0.5, n_slots=4, n_substeps=2)
        np.testing.assert_allclose(p.times(), [0.5, 1.0, 1.5, 2.0])

    def test_validation(self, op2d):
        with pytest.raises(ValueError):
            SlotPropagator(op2d, dt_obs=-1.0, n_slots=5)
        with pytest.raises(ValueError):
            SlotPropagator(op2d, dt_obs=0.1, n_slots=0)


class TestLTI:
    def test_shift_invariance(self, op2d, prop2d, sensors2d, rng):
        Nt, Nm = prop2d.n_slots, op2d.n_parameters
        m = np.zeros((Nt, Nm))
        m[0] = rng.standard_normal(Nm)
        d0 = prop2d.forward(m, sensors=sensors2d).d
        for shift in (1, 3):
            ms = np.zeros((Nt, Nm))
            ms[shift] = m[0]
            ds = prop2d.forward(ms, sensors=sensors2d).d
            scale = max(np.abs(d0).max(), 1.0)
            np.testing.assert_allclose(ds[shift:], d0[: Nt - shift], atol=1e-12 * scale)
            np.testing.assert_allclose(ds[:shift], 0.0, atol=1e-14)

    def test_linearity(self, op2d, prop2d, sensors2d, rng):
        Nt, Nm = prop2d.n_slots, op2d.n_parameters
        m1 = rng.standard_normal((Nt, Nm))
        m2 = rng.standard_normal((Nt, Nm))
        d1 = prop2d.forward(m1, sensors=sensors2d).d
        d2 = prop2d.forward(m2, sensors=sensors2d).d
        d12 = prop2d.forward(2.0 * m1 - 0.5 * m2, sensors=sensors2d).d
        np.testing.assert_allclose(d12, 2.0 * d1 - 0.5 * d2, atol=1e-11)

    def test_zero_parameters_zero_data(self, op2d, prop2d, sensors2d):
        m = np.zeros((prop2d.n_slots, op2d.n_parameters))
        d = prop2d.forward(m, sensors=sensors2d).d
        np.testing.assert_array_equal(d, 0.0)

    def test_causality_of_kernel(self, kernel2d):
        # kernel[k] maps slot j to slot j+k: strictly causal support only.
        assert kernel2d.ndim == 3
        assert np.abs(kernel2d).max() > 0


class TestKernelExtraction:
    def test_adjoint_equals_forward_impulses(self, prop2d, sensors2d, kernel2d):
        T_fwd = prop2d.p2o_kernel_forward(sensors2d)
        scale = np.abs(T_fwd).max()
        np.testing.assert_allclose(kernel2d, T_fwd, atol=1e-11 * scale)

    def test_kernel_reproduces_forward(self, op2d, prop2d, sensors2d, kernel2d, rng):
        Nt, Nm = prop2d.n_slots, op2d.n_parameters
        m = rng.standard_normal((Nt, Nm))
        d_pde = prop2d.forward(m, sensors=sensors2d).d
        d_kernel = np.zeros_like(d_pde)
        for i in range(Nt):
            for j in range(i + 1):
                d_kernel[i] += kernel2d[i - j] @ m[j]
        np.testing.assert_allclose(d_pde, d_kernel, atol=1e-11 * np.abs(d_pde).max())

    def test_counter_tracks_adjoint_solves(self, op2d, sensors2d):
        p = SlotPropagator(op2d, dt_obs=0.2, n_slots=3, n_substeps=2)
        p.p2o_kernel(sensors2d)
        assert p.counter.adjoint_solves == sensors2d.n
        assert p.counter.operator_applications == 3 * 2 * 4


class TestP2OActions:
    def test_apply_p2o_matches_kernel(self, op2d, prop2d, sensors2d, F2d, rng):
        m = rng.standard_normal((prop2d.n_slots, op2d.n_parameters))
        d1 = prop2d.apply_p2o(m, sensors2d)
        d2 = F2d.matvec(m)
        np.testing.assert_allclose(d1, d2, atol=1e-11 * np.abs(d2).max())

    def test_apply_p2o_transpose_matches_kernel(
        self, op2d, prop2d, sensors2d, F2d, rng
    ):
        d = rng.standard_normal((prop2d.n_slots, sensors2d.n))
        g1 = prop2d.apply_p2o_transpose(d, sensors2d)
        g2 = F2d.rmatvec(d)
        np.testing.assert_allclose(g1, g2, atol=1e-11 * np.abs(g2).max())

    def test_p2o_adjoint_identity_via_pde(self, op2d, prop2d, sensors2d, rng):
        m = rng.standard_normal((prop2d.n_slots, op2d.n_parameters))
        d = rng.standard_normal((prop2d.n_slots, sensors2d.n))
        lhs = float(np.sum(prop2d.apply_p2o(m, sensors2d) * d))
        rhs = float(np.sum(m * prop2d.apply_p2o_transpose(d, sensors2d)))
        assert lhs == pytest.approx(rhs, rel=1e-11)


class TestRecording:
    def test_energy_monotone_with_absorbing(self, op2d):
        x0 = op2d.zero_state(1)
        _, P = op2d.views(x0)
        c = op2d.h1.dof_coords
        P[:, 0] = np.exp(-((c[:, 0] - 2.0) ** 2) / 0.1 - (c[:, 1] + 0.4) ** 2 / 0.05)
        p = SlotPropagator(op2d, dt_obs=0.2, n_slots=15, cfl=0.3)
        E = p.forward(None, x0=x0, record_energy=True).energies
        assert np.all(np.diff(E) <= 1e-12 * E[0])
        assert E[-1] < 0.9 * E[0]  # waves reach the absorbing sides

    def test_eta_recording_shape(self, op2d, prop2d, scenario2d):
        res = prop2d.forward(scenario2d.m, record_eta=True)
        assert res.eta.shape == (prop2d.n_slots, op2d.surface_op.n)

    def test_report_keys(self, op2d, sensors2d):
        p = SlotPropagator(op2d, dt_obs=0.2, n_slots=2, n_substeps=2)
        p.forward(np.zeros((2, op2d.n_parameters)), sensors=sensors2d)
        rep = p.report()
        assert rep["forward_solves"] == 1
        assert rep["n_substeps"] == 2

    def test_requires_m_or_x0(self, prop2d):
        with pytest.raises(ValueError):
            prop2d.forward(None)

    def test_wrong_m_shape(self, prop2d, op2d):
        with pytest.raises(ValueError):
            prop2d.forward(np.zeros((3, op2d.n_parameters)))
