"""Physics validation: the discrete model reproduces analytic wave physics.

Three classical solutions pin down the coupled acoustic--gravity physics:

* the **gravity-wave dispersion relation** ``omega^2 = g k tanh(k H)``,
  recovered in the incompressible limit with the error converging at the
  theoretical O(g H / c^2) rate;
* the **acoustic organ-pipe mode** of a closed water column (rigid bottom,
  pressure-release surface): period ``4 H / c``;
* **volume conservation**: uniform seafloor uplift in a closed basin
  raises the mean sea surface by exactly the uplifted volume.
"""

import numpy as np
import pytest

from repro.fem.mesh import StructuredMesh
from repro.ocean.acoustic_gravity import AcousticGravityOperator
from repro.ocean.material import SeawaterMaterial
from repro.ocean.observations import SurfaceQoI
from repro.ocean.propagator import SlotPropagator


def _standing_wave_period_error(c: float) -> float:
    """Relative error of the measured seiche period at sound speed ``c``."""
    L, H, g = 4.0, 0.5, 1.0
    mat = SeawaterMaterial.nondimensional(c=c, g=g)
    mesh = StructuredMesh.ocean([np.linspace(0, L, 9)], nz=2, depth=H)
    op = AcousticGravityOperator(mesh, order=4, material=mat, absorbing=())
    k = np.pi / L
    T_exact = 2 * np.pi / np.sqrt(g * k * np.tanh(k * H))
    coords = op.h1.dof_coords
    p0 = (
        mat.rho * g * 1e-3 * np.cos(k * coords[:, 0])
        * np.cosh(k * (coords[:, 1] + H)) / np.cosh(k * H)
    )
    X = op.zero_state(1)
    _, P = op.views(X)
    P[:, 0] = p0
    prop = SlotPropagator(op, dt_obs=T_exact / 40, n_slots=40, cfl=0.35)
    gauge = SurfaceQoI(op, np.array([[0.0]]))
    eta = prop.forward(None, sensors=gauge, x0=X).d[:, 0]
    t = prop.times()
    sc = np.where(np.diff(np.sign(eta)) != 0)[0]
    tc = np.array(
        [t[i] - eta[i] * (t[i + 1] - t[i]) / (eta[i + 1] - eta[i]) for i in sc]
    )
    T_meas = 2 * float(np.diff(tc).mean())
    return abs(T_meas - T_exact) / T_exact


def test_gravity_wave_dispersion_incompressible_limit():
    # Error must shrink ~1/c^2 toward the exact incompressible dispersion.
    e2 = _standing_wave_period_error(2.0)
    e4 = _standing_wave_period_error(4.0)
    assert e4 < 0.02
    assert e4 < e2 / 3.0  # theoretical factor is 4


def test_acoustic_organ_pipe_mode():
    # Closed(bottom)-open(surface) column: fundamental period 4 H / c.
    H, c = 1.0, 1.0
    # Tiny g makes the surface term a pressure-release condition (p ~ 0).
    mat = SeawaterMaterial.nondimensional(c=c, g=1e-7)
    mesh = StructuredMesh.ocean([], nz=4, depth=H)
    op = AcousticGravityOperator(mesh, order=4, material=mat, absorbing=())
    k = np.pi / (2 * H)
    T_exact = 4 * H / c
    coords = op.h1.dof_coords
    p0 = np.cos(k * (coords[:, 0] + H))  # antinode at the rigid bottom
    X = op.zero_state(1)
    _, P = op.views(X)
    P[:, 0] = p0
    prop = SlotPropagator(op, dt_obs=T_exact / 24, n_slots=48, cfl=0.35)
    # Gauge: pressure at the bottom trace node.
    bot = op.bottom_trace.dofs[0]
    n_steps = prop.n_substeps
    vals = []
    x = X
    from repro.fem.timestep import rk4_forced_step

    for _ in range(prop.n_slots):
        for _ in range(n_steps):
            x = rk4_forced_step(op.apply, x, prop.dt, None)
        vals.append(float(x[op.nu + bot, 0]))
    vals = np.array(vals)
    t = prop.times()
    sc = np.where(np.diff(np.sign(vals)) != 0)[0]
    tc = np.array(
        [t[i] - vals[i] * (t[i + 1] - t[i]) / (vals[i + 1] - vals[i]) for i in sc]
    )
    T_meas = 2 * float(np.diff(tc).mean())
    assert T_meas == pytest.approx(T_exact, rel=0.02)


def test_volume_conservation_under_uplift():
    # Uniform uplift of the whole seafloor raises the mean surface by the
    # uplifted amount (after seiche transients are averaged out).
    L, H = 2.0, 0.5
    mat = SeawaterMaterial.nondimensional(c=4.0, g=1.0)
    mesh = StructuredMesh.ocean([np.linspace(0, L, 5)], nz=2, depth=H)
    op = AcousticGravityOperator(mesh, order=3, material=mat, absorbing=())
    Nt = 30
    prop = SlotPropagator(op, dt_obs=0.25, n_slots=Nt, cfl=0.35)
    m = np.zeros((Nt, op.n_parameters))
    m[:4] = 0.01  # uplift rate for 1 time unit -> total uplift 0.01
    res = prop.forward(m, record_eta=True)
    eta_mean = float(res.eta[8:].mean())
    assert eta_mean == pytest.approx(0.01, rel=0.05)


def test_pressure_sign_positive_under_upward_uplift():
    # Upward seafloor motion compresses the column: bottom pressure rises.
    L, H = 2.0, 0.5
    mat = SeawaterMaterial.nondimensional(c=2.0, g=1.0)
    mesh = StructuredMesh.ocean([np.linspace(0, L, 5)], nz=2, depth=H)
    op = AcousticGravityOperator(mesh, order=3, material=mat, absorbing=())
    prop = SlotPropagator(op, dt_obs=0.1, n_slots=3, cfl=0.35)
    from repro.ocean.observations import SensorArray

    sens = SensorArray(op, np.array([[1.0]]))
    m = np.full((3, op.n_parameters), 0.02)
    d = prop.forward(m, sensors=sens).d
    assert np.all(d > 0)


def test_absorbing_boundary_removes_energy_after_transit():
    # A pulse launched toward a lateral boundary must lose most of its
    # energy after the transit time (imperfect absorption is expected).
    L, H, c = 4.0, 0.5, 2.0
    mat = SeawaterMaterial.nondimensional(c=c, g=1.0)
    mesh = StructuredMesh.ocean([np.linspace(0, L, 9)], nz=2, depth=H)
    op = AcousticGravityOperator(mesh, order=3, material=mat)
    x0 = op.zero_state(1)
    _, P = op.views(x0)
    coords = op.h1.dof_coords
    P[:, 0] = np.exp(-((coords[:, 0] - 2.0) ** 2) / 0.05)
    T_transit = (L / 2) / c
    prop = SlotPropagator(op, dt_obs=T_transit, n_slots=6, cfl=0.3)
    E = prop.forward(None, x0=x0, record_energy=True).energies
    # The impedance condition Z = rho c is exact for normally-incident
    # acoustic waves; the gravity-wave component reflects partially, so
    # expect substantial (not total) energy removal, monotonically.
    assert np.all(np.diff(E) <= 1e-12 * E[0])
    assert E[-1] < 0.65 * E[0]
