"""Memory tracker: ledgers, peak tracking, view-aware counting."""

import numpy as np
import pytest

from repro.util.memory import (
    GIB,
    MIB,
    MemoryBudget,
    MemoryTracker,
    array_set_nbytes,
    nbytes_of,
)


def test_nbytes_of_skips_none():
    a = np.zeros(10)
    assert nbytes_of(a, None, a) == 2 * a.nbytes


class TestTracker:
    def test_persistent_accumulates(self):
        t = MemoryTracker()
        a = np.zeros(100)
        t.add_persistent("geom", a)
        t.add_persistent("geom", a)
        assert t.persistent["geom"] == 2 * a.nbytes
        assert t.total_persistent == 2 * a.nbytes

    def test_transient_peak(self):
        t = MemoryTracker()
        t.add_transient_bytes("ws", 1000)
        t.release_transient("ws")
        t.add_transient_bytes("ws2", 400)
        assert t.peak_transient == 1000
        assert t.total_transient == 400

    def test_total(self):
        t = MemoryTracker()
        t.add_persistent("a", np.zeros(10))
        t.add_transient("b", np.zeros(5))
        assert t.total == t.total_persistent + t.total_transient

    def test_bytes_per_dof(self):
        t = MemoryTracker()
        t.add_persistent("a", np.zeros(128))
        assert t.bytes_per_dof(128) == pytest.approx(8.0)
        assert t.bytes_per_dof(0) == 0.0

    def test_report_mentions_gib(self):
        t = MemoryTracker()
        t.add_persistent("factors", np.zeros(1 << 10))
        assert "GiB" in t.report() and "factors" in t.report()


def test_array_set_counts_views_once():
    base = np.zeros(1000)
    v1 = base[:500]
    v2 = base[500:]
    count, total = array_set_nbytes([base, v1, v2])
    assert count == 1
    assert total == base.nbytes


def test_array_set_distinct_buffers():
    a, b = np.zeros(10), np.zeros(20)
    count, total = array_set_nbytes([a, b])
    assert count == 2 and total == a.nbytes + b.nbytes


def test_gib_constant():
    assert GIB == float(1 << 30)


class TestMemoryBudget:
    def test_ledger_and_remaining(self):
        b = MemoryBudget(total_bytes=1000)
        b.register("a", 400)
        b.register("b", 300)
        assert b.used == 700 and b.remaining == 300
        assert b.fits(300) and not b.fits(301)
        assert not b.over_budget()
        b.register("a", 800)  # re-register replaces, never accumulates
        assert b.used == 1100 and b.over_budget()
        assert b.release("a") == 800
        assert b.release("a") == 0  # idempotent
        assert b.used == 300 and b.nbytes_of("b") == 300

    def test_unlimited_budget(self):
        b = MemoryBudget()
        b.register("huge", 10 * int(GIB))
        assert b.remaining is None
        assert b.fits(10 ** 15) and not b.over_budget()

    def test_ensure_coerces(self):
        b = MemoryBudget(total_bytes=int(MIB))
        assert MemoryBudget.ensure(b) is b
        assert MemoryBudget.ensure(None).total_bytes is None
        assert MemoryBudget.ensure(2048).total_bytes == 2048

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBudget(total_bytes=0)
        b = MemoryBudget(total_bytes=10)
        with pytest.raises(ValueError):
            b.register("x", -1)

    def test_report_lists_largest_first(self):
        b = MemoryBudget(total_bytes=int(GIB))
        b.register("small", 1 << 20)
        b.register("large", 8 << 20)
        rep = b.report()
        assert rep.index("large") < rep.index("small")
        assert "MiB" in rep
