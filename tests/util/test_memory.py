"""Memory tracker: ledgers, peak tracking, view-aware counting."""

import numpy as np
import pytest

from repro.util.memory import GIB, MemoryTracker, array_set_nbytes, nbytes_of


def test_nbytes_of_skips_none():
    a = np.zeros(10)
    assert nbytes_of(a, None, a) == 2 * a.nbytes


class TestTracker:
    def test_persistent_accumulates(self):
        t = MemoryTracker()
        a = np.zeros(100)
        t.add_persistent("geom", a)
        t.add_persistent("geom", a)
        assert t.persistent["geom"] == 2 * a.nbytes
        assert t.total_persistent == 2 * a.nbytes

    def test_transient_peak(self):
        t = MemoryTracker()
        t.add_transient_bytes("ws", 1000)
        t.release_transient("ws")
        t.add_transient_bytes("ws2", 400)
        assert t.peak_transient == 1000
        assert t.total_transient == 400

    def test_total(self):
        t = MemoryTracker()
        t.add_persistent("a", np.zeros(10))
        t.add_transient("b", np.zeros(5))
        assert t.total == t.total_persistent + t.total_transient

    def test_bytes_per_dof(self):
        t = MemoryTracker()
        t.add_persistent("a", np.zeros(128))
        assert t.bytes_per_dof(128) == pytest.approx(8.0)
        assert t.bytes_per_dof(0) == 0.0

    def test_report_mentions_gib(self):
        t = MemoryTracker()
        t.add_persistent("factors", np.zeros(1 << 10))
        assert "GiB" in t.report() and "factors" in t.report()


def test_array_set_counts_views_once():
    base = np.zeros(1000)
    v1 = base[:500]
    v2 = base[500:]
    count, total = array_set_nbytes([base, v1, v2])
    assert count == 1
    assert total == base.nbytes


def test_array_set_distinct_buffers():
    a, b = np.zeros(10), np.zeros(20)
    count, total = array_set_nbytes([a, b])
    assert count == 2 and total == a.nbytes + b.nbytes


def test_gib_constant():
    assert GIB == float(1 << 30)
