"""Validation helpers: clear failures on bad public-API arguments."""

import numpy as np
import pytest

from repro.util.validation import (
    as_float_array,
    check_in,
    check_positive,
    check_shape,
    require,
)


def test_require():
    require(True, "fine")
    with pytest.raises(ValueError, match="broken"):
        require(False, "broken")


def test_check_positive_strict():
    assert check_positive("x", 2) == 2.0
    with pytest.raises(ValueError):
        check_positive("x", 0.0)
    with pytest.raises(ValueError):
        check_positive("x", -1.0)


def test_check_positive_nonstrict():
    assert check_positive("x", 0.0, strict=False) == 0.0
    with pytest.raises(ValueError):
        check_positive("x", -0.1, strict=False)


def test_check_in():
    assert check_in("mode", "fft", ("fft", "direct")) == "fft"
    with pytest.raises(ValueError, match="mode"):
        check_in("mode", "dense", ("fft", "direct"))


def test_check_shape_exact_and_wildcard():
    a = np.zeros((3, 4))
    check_shape("a", a, (3, 4))
    check_shape("a", a, (-1, 4))
    with pytest.raises(ValueError):
        check_shape("a", a, (4, 3))
    with pytest.raises(ValueError):
        check_shape("a", a, (3, 4, 1))


def test_as_float_array_contiguous():
    a = np.arange(6).reshape(2, 3)[:, ::2]
    out = as_float_array("a", a)
    assert out.flags["C_CONTIGUOUS"] and out.dtype == np.float64
    with pytest.raises(ValueError):
        as_float_array("a", np.zeros((2, 2)), ndim=1)
