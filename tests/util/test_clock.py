"""Injectable clock seam: ManualClock semantics and WallClock contract.

The fabric's deadline flush and the twin orchestrator both take a
:class:`~repro.util.clock.Clock`; timing-independent tests depend on the
ManualClock's firing rules being exact — deadline order, ties by arming
order, synchronous firing in the advancing thread, cancellation, and
callbacks that re-arm within the same ``advance`` window.
"""

from __future__ import annotations

import pytest

from repro.util.clock import WALL, Clock, ManualClock, WallClock, ensure_clock


def test_ensure_clock_defaults_to_shared_wall():
    assert ensure_clock(None) is WALL
    clk = ManualClock()
    assert ensure_clock(clk) is clk
    assert isinstance(WALL, WallClock)


def test_base_class_is_abstract():
    with pytest.raises(NotImplementedError):
        Clock().monotonic()
    with pytest.raises(NotImplementedError):
        Clock().timer(0.0, lambda: None)


def test_manual_clock_advances_and_fires_in_deadline_order():
    clk = ManualClock()
    fired = []
    clk.timer(0.30, lambda: fired.append("late"))
    clk.timer(0.10, lambda: fired.append("early"))
    clk.timer(0.10, lambda: fired.append("early-tie"))  # tie: arming order
    assert clk.pending() == 3
    assert clk.advance(0.05) == 0
    assert fired == [] and clk.monotonic() == pytest.approx(0.05)
    assert clk.advance(0.10) == 2
    assert fired == ["early", "early-tie"]
    assert clk.advance(1.0) == 1
    assert fired == ["early", "early-tie", "late"]
    assert clk.pending() == 0
    assert clk.monotonic() == pytest.approx(1.15)


def test_manual_clock_callback_sees_its_own_deadline():
    clk = ManualClock(start=2.0)
    seen = []
    clk.timer(0.5, lambda: seen.append(clk.monotonic()))
    clk.advance(3.0)
    assert seen == [pytest.approx(2.5)]
    assert clk.monotonic() == pytest.approx(5.0)


def test_manual_clock_cancel_and_rearm_within_window():
    clk = ManualClock()
    fired = []
    t = clk.timer(0.1, lambda: fired.append("cancelled"))
    t.cancel()
    t.cancel()  # idempotent

    # A callback arming a timer whose deadline still falls inside the
    # same advance window fires within that same call (the fabric's
    # re-armed deadline flush relies on this).
    def chain():
        fired.append("first")
        clk.timer(0.1, lambda: fired.append("second"))

    clk.timer(0.2, chain)
    assert clk.advance(0.5) == 2
    assert fired == ["first", "second"]
    assert clk.pending() == 0


def test_manual_clock_rejects_negative_inputs():
    clk = ManualClock()
    with pytest.raises(ValueError):
        clk.timer(-0.1, lambda: None)
    with pytest.raises(ValueError):
        clk.advance(-1.0)


def test_wall_clock_timer_fires_and_cancels():
    import threading

    clk = WallClock()
    t0 = clk.monotonic()
    event = threading.Event()
    handle = clk.timer(0.01, event.set)
    assert event.wait(timeout=5.0)
    assert clk.monotonic() >= t0
    handle.cancel()  # already fired: cancel is a no-op

    never = clk.timer(60.0, lambda: None)
    never.cancel()  # cancelled long before its deadline
