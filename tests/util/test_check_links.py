"""The docs link checker: GitHub slug rules and broken-target detection.

``tools/check_links.py`` gates CI on every intra-repo markdown link,
including ``#anchor`` fragments — so its slugification must match what
GitHub actually generates (lowercase, punctuation dropped, duplicate
headings suffixed, fenced code blocks skipped), and ``check`` must
distinguish a missing file from a missing anchor.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

from check_links import anchors, check, slugify  # noqa: E402


def test_slugify_github_rules():
    assert slugify("Simple Heading") == "simple-heading"
    assert slugify("7. The serving fabric (`repro/serve/fabric.py`)") == (
        "7-the-serving-fabric-reproservefabricpy"
    )
    assert slugify("9. Replay & chaos testing") == "9-replay--chaos-testing"
    assert slugify("snake_case and hy-phens survive") == (
        "snake_case-and-hy-phens-survive"
    )
    assert slugify("**bold** and *emph* and `code`") == "bold-and-emph-and-code"
    assert slugify("[link text](https://example.com) tail") == "link-text-tail"


def test_anchors_dedup_and_fences():
    text = (
        "# Setup\n"
        "## Setup\n"
        "```\n"
        "# not a heading, just a shell comment\n"
        "```\n"
        "## Setup\n"
    )
    assert anchors(text) == {"setup", "setup-1", "setup-2"}


def test_check_reports_missing_file_and_anchor(tmp_path):
    (tmp_path / "a.md").write_text(
        "# Alpha\n"
        "ok: [self](#alpha) and [other](b.md#beta-section)\n"
        "bad: [gone](missing.md) and [frag](b.md#nope) and [selfbad](#nope)\n",
        encoding="utf-8",
    )
    (tmp_path / "b.md").write_text("# Beta section\n", encoding="utf-8")
    broken = check(tmp_path)
    reasons = {(str(md), target): reason for md, target, reason in broken}
    assert reasons == {
        ("a.md", "missing.md"): "missing file",
        ("a.md", "b.md#nope"): "missing anchor",
        ("a.md", "#nope"): "missing anchor",
    }


def test_check_skips_external_targets(tmp_path):
    (tmp_path / "a.md").write_text(
        "[web](https://example.com/x#y) [mail](mailto:x@y.z)\n", encoding="utf-8"
    )
    assert check(tmp_path) == []


def test_repo_docs_are_clean():
    root = Path(__file__).resolve().parents[2]
    assert check(root) == [], "repo markdown has broken links/anchors"
