"""Timers: accumulation, nesting guards, registry reports."""

import time

import pytest

from repro.util.timing import Timer, TimerRegistry, timed


class TestTimer:
    def test_accumulates_intervals(self):
        t = Timer("x")
        for _ in range(3):
            t.start()
            time.sleep(0.001)
            t.stop()
        assert t.count == 3
        assert t.elapsed >= 0.003
        assert t.mean == pytest.approx(t.elapsed / 3)

    def test_double_start_rejected(self):
        t = Timer("x")
        t.start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer("x").stop()

    def test_reset(self):
        t = Timer("x")
        with t.time():
            pass
        t.reset()
        assert t.elapsed == 0.0 and t.count == 0

    def test_reset_running_rejected(self):
        t = Timer("x")
        t.start()
        with pytest.raises(RuntimeError):
            t.reset()
        t.stop()

    def test_context_manager(self):
        t = Timer("x")
        with t.time():
            time.sleep(0.001)
        assert t.elapsed > 0 and not t.running

    def test_context_stops_on_exception(self):
        t = Timer("x")
        with pytest.raises(ValueError):
            with t.time():
                raise ValueError("boom")
        assert not t.running and t.count == 1

    def test_mean_zero_when_unused(self):
        assert Timer("x").mean == 0.0


class TestRegistry:
    def test_table1_phases(self):
        reg = TimerRegistry(["Initialization", "Setup", "Adjoint p2o", "I/O"])
        with reg.time("Setup"):
            time.sleep(0.001)
        d = reg.as_dict()
        assert set(d) == {"Initialization", "Setup", "Adjoint p2o", "I/O"}
        assert d["Setup"] > 0 and d["I/O"] == 0.0

    def test_breakdown_fractions_sum_to_one(self):
        reg = TimerRegistry()
        with reg.time("a"):
            time.sleep(0.001)
        with reg.time("b"):
            time.sleep(0.002)
        fracs = [f for _, _, f in reg.breakdown()]
        assert sum(fracs) == pytest.approx(1.0)

    def test_report_contains_percentages(self):
        reg = TimerRegistry()
        with reg.time("solve"):
            time.sleep(0.001)
        rep = reg.report("Timers")
        assert "solve" in rep and "%" in rep and "total" in rep

    def test_contains_and_getitem(self):
        reg = TimerRegistry()
        t = reg["new"]
        assert "new" in reg and t is reg.add("new")

    def test_reset_all(self):
        reg = TimerRegistry(["a"])
        with reg.time("a"):
            pass
        reg.reset()
        assert reg.total == 0.0


def test_timed_helper():
    with timed() as t:
        time.sleep(0.001)
    assert t.elapsed > 0
