"""Rank-aware logging: namespacing and rank-0 conventions."""

import logging

from repro.util.logging import get_logger, set_verbosity


def test_logger_namespace():
    lg = get_logger("fem")
    assert lg.name == "repro.fem"


def test_rank_tagging():
    lg = get_logger("hpc", rank=3)
    assert lg.name == "repro.hpc.r3"


def test_nonzero_ranks_silenced():
    lg0 = get_logger("comm", rank=0)
    lg1 = get_logger("comm", rank=1)
    assert lg1.getEffectiveLevel() >= logging.ERROR
    assert lg0.getEffectiveLevel() <= logging.WARNING or lg0.level == 0


def test_set_verbosity():
    set_verbosity(logging.DEBUG)
    assert logging.getLogger("repro").level == logging.DEBUG
    set_verbosity(logging.WARNING)
    assert logging.getLogger("repro").level == logging.WARNING
