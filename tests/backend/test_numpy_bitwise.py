"""The routed hot paths on the numpy backend are bitwise the un-routed ones.

The seam's numpy contract is *identity*, not tolerance: an explicitly
requested numpy backend must produce byte-for-byte the results of the
default path (which is itself the pre-seam arithmetic, pinned by the
whole existing serve/inference suite).  These tests drive the routed
surfaces — streaming engine, fleet, Toeplitz applies, certified screen —
under ``backend="numpy"`` and assert exact equality against the default.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import default_backend
from repro.inference.streaming import IncrementalStreamingPosterior
from repro.inference.toeplitz import BlockToeplitzOperator
from repro.serve import ScenarioIdentifier


def test_engine_with_explicit_numpy_backend_matches_default(bk_inversion, bk_streams):
    inv = bk_inversion
    _, _, d_obs = bk_streams
    eng_a = IncrementalStreamingPosterior(inv)
    eng_b = IncrementalStreamingPosterior(inv, backend="numpy")
    eng_a.advance_geometry(inv.nt)
    eng_b.advance_geometry(inv.nt)
    np.testing.assert_array_equal(
        eng_a.geometry_rows(inv.nt), eng_b.geometry_rows(inv.nt)
    )
    np.testing.assert_array_equal(
        eng_a.covariance_at(inv.nt - 1), eng_b.covariance_at(inv.nt - 1)
    )
    fa = eng_a.open_fleet(d_obs[:, :, :5]).advance(inv.nt)
    fb = eng_b.open_fleet(d_obs[:, :, :5]).advance(inv.nt)
    np.testing.assert_array_equal(fa.states, fb.states)
    np.testing.assert_array_equal(fa.squared_norms(), fb.squared_norms())
    np.testing.assert_array_equal(fa.log_evidence(), fb.log_evidence())
    np.testing.assert_array_equal(fa.forecast_means(), fb.forecast_means())


def test_ragged_fleet_sketch_state_bitwise(bk_inversion, bk_streams):
    inv = bk_inversion
    _, _, d_obs = bk_streams
    from repro.serve.sketch import SlotSketch

    sk = SlotSketch(inv.nt, inv.nd, rank=2, seed=3)
    targets = np.array([2, 5, inv.nt, 3, 7])[: min(5, d_obs.shape[2])]
    fa = IncrementalStreamingPosterior(inv).open_fleet(d_obs[:, :, : targets.size])
    fb = IncrementalStreamingPosterior(inv, backend="numpy").open_fleet(
        d_obs[:, :, : targets.size]
    )
    fa.attach_sketch(sk.projections)
    fb.attach_sketch(sk.projections)
    fa.advance(targets)
    fb.advance(targets)
    np.testing.assert_array_equal(fa.slot_projections(), fb.slot_projections())
    np.testing.assert_array_equal(
        fa.slot_projection_norms(), fb.slot_projection_norms()
    )
    np.testing.assert_array_equal(fa.slot_squared_norms(), fb.slot_squared_norms())


def test_toeplitz_applies_bitwise_under_explicit_numpy_backend():
    rng = np.random.default_rng(11)
    kernel = rng.standard_normal((6, 4, 3))
    for layout in ("space-major", "time-major"):
        op_a = BlockToeplitzOperator(kernel, layout=layout)
        op_b = BlockToeplitzOperator(kernel, layout=layout, backend="numpy")
        m = rng.standard_normal((6, 3, 2))
        d = rng.standard_normal((6, 4, 2))
        np.testing.assert_array_equal(op_a.matvec(m), op_b.matvec(m))
        np.testing.assert_array_equal(op_a.rmatvec(d), op_b.rmatvec(d))
        tb = op_b.transpose_operator()
        assert tb.backend is op_b.backend
        np.testing.assert_array_equal(op_a.transpose_operator().matvec(d), tb.matvec(d))


def test_identifier_and_screen_bitwise_under_explicit_numpy(bk_inversion, bk_bank, bk_streams):
    inv = bk_inversion
    _, _, d_obs = bk_streams
    ident_a = ScenarioIdentifier.from_bank(inv.streaming_state(), bk_bank)
    ident_b = ScenarioIdentifier.from_bank(inv.streaming_state(backend="numpy"), bk_bank)
    np.testing.assert_array_equal(ident_a._Wmu, ident_b._Wmu)
    sess_a = ident_a.open(d_obs[:, :, :4]).advance(inv.nt)
    sess_b = ident_b.open(d_obs[:, :, :4]).advance(inv.nt)
    np.testing.assert_array_equal(sess_a.log_evidence(), sess_b.log_evidence())
    np.testing.assert_array_equal(
        sess_a.posterior().log_posterior, sess_b.posterior().log_posterior
    )
    la, ua = sess_a.evidence_interval(sketch_rank=2)
    lb_, ub_ = sess_b.evidence_interval(sketch_rank=2)
    np.testing.assert_array_equal(la, lb_)
    np.testing.assert_array_equal(ua, ub_)


def test_streaming_state_default_is_the_numpy_engine(bk_inversion):
    inv = bk_inversion
    eng = inv.streaming_state()
    assert eng is inv.streaming_state(backend="numpy")
    assert eng is inv.streaming_state(backend=default_backend())
    assert eng.backend is default_backend()
    assert inv.streaming_state_peek is eng
