"""Backend-seam fixtures: one small twin inversion plus a scenario bank.

The equivalence suite drives the *routed* online hot paths (streaming
fleet advances, bank identification, sketch screens, Toeplitz applies)
under different array backends, so the offline phases are built once per
session and shared read-only — exactly like the serving fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import ScenarioBank
from repro.twin import CascadiaTwin, TwinConfig


@pytest.fixture(scope="session")
def bk_twin():
    """A small 2D twin with Phase 1 complete."""
    twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=8, n_sensors=6, n_qoi=2))
    twin.setup()
    twin.phase1()
    return twin


@pytest.fixture(scope="session")
def bk_bank(bk_twin):
    """A 16-entry scenario bank on the twin's trace grid."""
    c = bk_twin.config
    bank = ScenarioBank(bk_twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=7)
    bank.generate(16)
    return bank


@pytest.fixture(scope="session")
def bk_streams(bk_twin, bk_bank):
    """``(d_clean, noise, d_obs)`` for the whole bank."""
    return bk_bank.observation_batch(bk_twin.F, noise_relative=0.01)


@pytest.fixture(scope="session")
def bk_inversion(bk_twin, bk_streams):
    """Phases 2-3 under the same fleet noise model the streams were drawn with."""
    _, noise, _ = bk_streams
    return bk_twin.phase23(noise)
