"""Backend registry, contracts, and the numpy kernel table's literal identity.

What must hold:

* The numpy backend is the always-available default, carries an all-zero
  kernel budget (``is_exact``, ``screen_rtol == 0``), and its transfer
  helpers are identity on float64 host arrays — no hidden copies on the
  hot path.
* Every numpy kernel-table entry produces **bitwise** the same array as
  the library call it wraps (that is the whole bitwise-identity
  contract: routing through the seam may not change a single BLAS call).
* Name resolution: aliases, caching, ``resolve_backend`` passthrough,
  and a clear error for unknown names.
* Accelerated backends are *detected* without being imported and carry a
  nonzero declared budget.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest
import scipy.linalg as sla

from repro.backend import (
    Backend,
    BackendUnavailable,
    KernelBudget,
    available_backends,
    default_backend,
    get_backend,
    resolve_backend,
)

HAVE_TORCH = importlib.util.find_spec("torch") is not None


# ----------------------------------------------------------------------
# Registry / resolution
# ----------------------------------------------------------------------
def test_default_backend_is_exact_numpy_singleton():
    bk = default_backend()
    assert bk.name == "numpy"
    assert bk.is_numpy
    assert bk.is_exact
    assert bk.screen_rtol == 0.0
    assert bk.budget == KernelBudget()
    assert bk.key() == ("numpy", "cpu", "float64")
    assert get_backend() is bk
    assert get_backend("numpy") is bk
    assert resolve_backend(None) is bk
    assert resolve_backend("numpy") is bk
    assert resolve_backend(bk) is bk


def test_aliases_resolve_to_canonical_backends():
    assert get_backend("np") is get_backend("numpy")
    if HAVE_TORCH:
        assert get_backend("pytorch") is get_backend("torch")
        assert get_backend("torch-cpu") is get_backend("torch")
    else:
        with pytest.raises(BackendUnavailable):
            get_backend("torch")


def test_unknown_backend_name_raises():
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("tensorflow")


def test_available_backends_reports_numpy_first():
    names = available_backends()
    assert names[0] == "numpy"
    assert ("torch" in names) == HAVE_TORCH


def test_kernel_budget_combined_sums_all_kernels():
    b = KernelBudget(gemm=1e-9, trsm=2e-9, fft=3e-9, qr=4e-9)
    assert b.combined() == pytest.approx(1e-8)
    assert KernelBudget().combined() == 0.0


def test_abstract_backend_kernels_are_unimplemented():
    bk = Backend()
    x = np.ones(3)
    for call in (
        lambda: bk.asarray(x),
        lambda: bk.to_numpy(x),
        lambda: bk.matmul(x, x),
        lambda: bk.solve_triangular(np.eye(3), x),
    ):
        with pytest.raises(NotImplementedError):
            call()


# ----------------------------------------------------------------------
# Numpy transfers: identity, no hidden copies
# ----------------------------------------------------------------------
def test_numpy_asarray_is_identity_for_float64():
    bk = default_backend()
    x = np.random.default_rng(0).standard_normal((4, 5))
    assert bk.asarray(x) is x
    assert bk.to_numpy(x) is x
    assert bk.is_native(x)
    y = bk.to_numpy(x, copy=True)
    assert y is not x
    np.testing.assert_array_equal(y, x)
    idx = np.array([2, 0, 1])
    assert bk.index(idx) is idx


def test_numpy_copy_and_allocators():
    bk = default_backend()
    x = np.arange(6.0).reshape(2, 3)
    c = bk.copy(x)
    assert c is not x and not np.shares_memory(c, x)
    np.testing.assert_array_equal(c, x)
    assert bk.zeros((2, 2)).sum() == 0.0
    assert bk.empty((3, 1)).shape == (3, 1)


# ----------------------------------------------------------------------
# Numpy kernel table: bitwise equal to the literal library calls
# ----------------------------------------------------------------------
def test_numpy_kernels_are_bitwise_the_library_calls():
    bk = default_backend()
    rng = np.random.default_rng(3)
    a = np.tril(rng.standard_normal((7, 7))) + 7.0 * np.eye(7)
    b = rng.standard_normal((7, 4))
    np.testing.assert_array_equal(
        bk.solve_triangular(a, b, lower=True),
        sla.solve_triangular(a, b, lower=True),
    )
    np.testing.assert_array_equal(
        bk.solve_triangular(a.T, b, lower=False),
        sla.solve_triangular(a.T, b, lower=False),
    )
    np.testing.assert_array_equal(bk.matmul(a, b), np.matmul(a, b))
    np.testing.assert_array_equal(
        bk.einsum("ij,ij->j", b, b), np.einsum("ij,ij->j", b, b)
    )
    q, r = bk.qr(b)
    q_ref, r_ref = np.linalg.qr(b)
    np.testing.assert_array_equal(q, q_ref)
    np.testing.assert_array_equal(r, r_ref)
    x = rng.standard_normal((5, 3, 2))
    np.testing.assert_array_equal(
        bk.rfft(x, n=8, axis=0), np.fft.rfft(x, n=8, axis=0)
    )
    xhat = np.fft.rfft(x, n=8, axis=0)
    np.testing.assert_array_equal(
        bk.irfft(xhat, n=8, axis=0), np.fft.irfft(xhat, n=8, axis=0)
    )
    np.testing.assert_array_equal(bk.moveaxis(x, 0, -1), np.moveaxis(x, 0, -1))
    assert bk.ascontiguousarray(x.T).flags["C_CONTIGUOUS"]
    z = np.fft.rfft(np.arange(8.0))
    assert bk.ascomplex(z) is z
