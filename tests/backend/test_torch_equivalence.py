"""torch-CPU equivalence: routed hot paths agree with numpy within budget.

Skipped wholesale when torch is not importable (the local toolchain is
numpy-only; CI runs these under a CPU-only torch install).  Every
assertion tolerance is the backend's *declared* kernel budget — the suite
is the executable form of the tolerance-certified contract.
"""

from __future__ import annotations

import numpy as np
import pytest

torch = pytest.importorskip("torch")

from repro.backend import get_backend
from repro.inference.streaming import IncrementalStreamingPosterior
from repro.inference.toeplitz import BlockToeplitzOperator
from repro.serve import ScenarioIdentifier


@pytest.fixture(scope="module")
def tbk():
    return get_backend("torch")


# ----------------------------------------------------------------------
# Kernel table
# ----------------------------------------------------------------------
def test_torch_backend_identity_and_transfers(tbk):
    assert tbk.name == "torch" and tbk.device == "cpu"
    assert not tbk.is_numpy and not tbk.is_exact
    assert tbk.screen_rtol > 0.0
    assert tbk.key() == ("torch", "cpu", "float64")
    x = np.random.default_rng(0).standard_normal((3, 4))
    t = tbk.asarray(x)
    assert tbk.is_native(t) and not tbk.is_native(x)
    assert t.dtype == torch.float64
    np.testing.assert_array_equal(tbk.to_numpy(t), x)
    y = tbk.to_numpy(t, copy=True)
    assert not np.shares_memory(y, tbk.to_numpy(t))


def test_torch_kernels_within_declared_budgets(tbk):
    rng = np.random.default_rng(4)
    budget = tbk.budget
    a = np.tril(rng.standard_normal((12, 12))) + 12.0 * np.eye(12)
    b = rng.standard_normal((12, 7))
    import scipy.linalg as sla

    ref = sla.solve_triangular(a, b, lower=True)
    got = tbk.to_numpy(tbk.solve_triangular(tbk.asarray(a), tbk.asarray(b)))
    np.testing.assert_allclose(got, ref, rtol=budget.trsm, atol=1e-12)
    # 1-D right-hand side round-trips through the unsqueeze path.
    got1 = tbk.to_numpy(tbk.solve_triangular(tbk.asarray(a), tbk.asarray(b[:, 0])))
    np.testing.assert_allclose(got1, ref[:, 0], rtol=budget.trsm, atol=1e-12)
    np.testing.assert_allclose(
        tbk.to_numpy(tbk.matmul(tbk.asarray(a), tbk.asarray(b))),
        a @ b,
        rtol=budget.gemm,
        atol=1e-12,
    )
    np.testing.assert_allclose(
        tbk.to_numpy(tbk.einsum("ij,ij->j", tbk.asarray(b), tbk.asarray(b))),
        np.einsum("ij,ij->j", b, b),
        rtol=budget.gemm,
        atol=1e-12,
    )
    x = rng.standard_normal((6, 3, 2))
    np.testing.assert_allclose(
        tbk.to_numpy(tbk.rfft(tbk.asarray(x), n=8, axis=0)),
        np.fft.rfft(x, n=8, axis=0),
        rtol=budget.fft,
        atol=1e-12,
    )


# ----------------------------------------------------------------------
# Routed hot paths
# ----------------------------------------------------------------------
def test_streaming_engine_matches_numpy_within_budget(bk_inversion, bk_streams, tbk):
    inv = bk_inversion
    _, _, d_obs = bk_streams
    rtol = max(tbk.screen_rtol, 1e-10)
    eng_np = IncrementalStreamingPosterior(inv)
    eng_t = IncrementalStreamingPosterior(inv, backend=tbk)
    eng_np.advance_geometry(inv.nt)
    eng_t.advance_geometry(inv.nt)
    np.testing.assert_allclose(
        eng_t.geometry_rows(inv.nt), eng_np.geometry_rows(inv.nt), rtol=rtol, atol=1e-10
    )
    np.testing.assert_allclose(
        eng_t.covariance_at(inv.nt - 2),
        eng_np.covariance_at(inv.nt - 2),
        rtol=rtol,
        atol=1e-10,
    )
    targets = np.array([2, inv.nt, 4, inv.nt - 1])[: min(4, d_obs.shape[2])]
    fn = eng_np.open_fleet(d_obs[:, :, : targets.size]).advance(targets)
    ft = eng_t.open_fleet(d_obs[:, :, : targets.size]).advance(targets)
    np.testing.assert_allclose(ft.states, fn.states, rtol=rtol, atol=1e-10)
    np.testing.assert_allclose(
        ft.squared_norms(), fn.squared_norms(), rtol=rtol, atol=1e-10
    )
    np.testing.assert_allclose(
        ft.slot_squared_norms(), fn.slot_squared_norms(), rtol=rtol, atol=1e-10
    )
    np.testing.assert_allclose(
        ft.forecast_means(), fn.forecast_means(), rtol=rtol, atol=1e-10
    )
    np.testing.assert_allclose(
        ft.log_evidence(), fn.log_evidence(), rtol=rtol, atol=1e-8
    )


def test_fleet_sketch_state_matches_numpy(bk_inversion, bk_streams, tbk):
    inv = bk_inversion
    _, _, d_obs = bk_streams
    from repro.serve.sketch import SlotSketch

    rtol = max(tbk.screen_rtol, 1e-10)
    sk = SlotSketch(inv.nt, inv.nd, rank=2, seed=5)
    fn = IncrementalStreamingPosterior(inv).open_fleet(d_obs[:, :, :3])
    ft = IncrementalStreamingPosterior(inv, backend=tbk).open_fleet(d_obs[:, :, :3])
    for f in (fn, ft):
        f.attach_sketch(sk.projections)
        f.advance(np.array([3, inv.nt, 5]))
    np.testing.assert_allclose(
        ft.slot_projections(), fn.slot_projections(), rtol=rtol, atol=1e-10
    )
    np.testing.assert_allclose(
        ft.slot_projection_norms(), fn.slot_projection_norms(), rtol=rtol, atol=1e-10
    )


def test_toeplitz_applies_match_numpy_within_budget(tbk):
    rng = np.random.default_rng(8)
    kernel = rng.standard_normal((7, 5, 4))
    for layout in ("space-major", "time-major"):
        op_np = BlockToeplitzOperator(kernel, layout=layout)
        op_t = BlockToeplitzOperator(kernel, layout=layout, backend=tbk)
        m = rng.standard_normal((7, 4, 3))
        d = rng.standard_normal((7, 5, 3))
        np.testing.assert_allclose(
            op_t.matvec(m), op_np.matvec(m), rtol=1e-8, atol=1e-10
        )
        np.testing.assert_allclose(
            op_t.rmatvec(d), op_np.rmatvec(d), rtol=1e-8, atol=1e-10
        )
        # Host inputs come back as host numpy arrays.
        assert isinstance(op_t.matvec(m), np.ndarray)
        # Device-native inputs stay on the device.
        out = op_t.matvec(tbk.asarray(m))
        assert tbk.is_native(out)
        np.testing.assert_allclose(
            tbk.to_numpy(out), op_np.matvec(m), rtol=1e-8, atol=1e-10
        )


def test_identification_and_certified_screen_on_torch(bk_inversion, bk_bank, bk_streams, tbk):
    inv = bk_inversion
    _, _, d_obs = bk_streams
    eng_t = inv.streaming_state(backend=tbk)
    eng_np = inv.streaming_state()
    ident_t = ScenarioIdentifier.from_bank(eng_t, bk_bank)
    ident_np = ScenarioIdentifier.from_bank(eng_np, bk_bank)
    np.testing.assert_allclose(
        ident_t._Wmu, ident_np._Wmu, rtol=max(tbk.screen_rtol, 1e-10), atol=1e-10
    )
    sess_t = ident_t.open(d_obs[:, :, :4]).advance(inv.nt)
    sess_np = ident_np.open(d_obs[:, :, :4]).advance(inv.nt)
    ev_t = sess_t.log_evidence()
    ev_np = sess_np.log_evidence()
    np.testing.assert_allclose(ev_t, ev_np, rtol=1e-7, atol=1e-7)
    # Same argmax ranking on a well-separated bank.
    np.testing.assert_array_equal(ev_t.argmax(axis=1), ev_np.argmax(axis=1))
    # The torch session's certified interval is budget-inflated and must
    # contain the numpy-exact evidence.
    lb, ub = sess_t.evidence_interval(sketch_rank=2)
    assert (lb <= ev_np + 1e-12).all()
    assert (ub >= ev_np - 1e-12).all()
    # Sketch memo keys are backend-scoped: one entry per backend identity.
    ident_t.sketch(2)
    ident_t.sketch(2)
    assert len(ident_t._sketches) == 1
    assert (2, 0) + tbk.key() in ident_t._sketches


def test_streaming_state_memoizes_per_backend(bk_inversion, tbk):
    inv = bk_inversion
    eng_np = inv.streaming_state()
    eng_t = inv.streaming_state(backend="torch")
    assert eng_t is not eng_np
    assert eng_t is inv.streaming_state(backend=tbk)
    assert inv.streaming_state_peek is eng_np
