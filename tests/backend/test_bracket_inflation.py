"""Tolerance-certified bracket inflation: the ``rtol`` contract of the screen.

:func:`repro.serve.sketch.certified_bounds` grows its certified intervals
by ``rtol * (|quad| + hi_add + |c_k| + 1)`` when the whitened states were
produced by a backend with a nonzero kernel budget.  What must hold:

* ``rtol = 0`` is the historical screen, bitwise (the default argument).
* The certified property itself: brackets from *clean* inputs contain the
  exact evidence, with or without a sketch, for any slot subset.
* Inflation is one-sided outward and strictly positive at ``rtol > 0``.
* The point of the contract: brackets computed from *perturbed* states
  (relative perturbations well inside the declared budget — a stand-in
  for an accelerated backend's reduction reordering) still contain the
  numpy-exact evidence once inflated by the budget.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.serve.sketch as sketch_mod
from repro.serve.sketch import SlotSketch, certified_bounds

_LOG_2PI = float(np.log(2.0 * np.pi))


def _random_problem(seed, nt=5, nd=6, J=4, S=20, rank=0):
    """Synthetic whitened states + the dict views certified_bounds eats."""
    rng = np.random.default_rng(seed)
    wd = rng.standard_normal((nt * nd, J))
    wmu = rng.standard_normal((nt * nd, S))
    # One stream shadows a bank column closely (near-cancelling quad).
    wd[:, 0] = wmu[:, 0] + 1e-6 * rng.standard_normal(nt * nd)
    hz = rng.integers(1, nt + 1, size=J)
    # Zero out slots beyond each stream's horizon, as the fleet would.
    for j in range(J):
        wd[hz[j] * nd :, j] = 0.0
    logdiag = np.cumsum(np.abs(rng.standard_normal(nt + 1)))
    logdiag[0] = 0.0

    def views(wd_, wmu_):
        static = {
            "wd": wd_,
            "wd_slot": np.einsum(
                "tdj,tdj->tj", wd_.reshape(nt, nd, J), wd_.reshape(nt, nd, J)
            ),
            "hz": hz,
            "logdiag": logdiag,
        }
        bankv = {
            "wmu": wmu_,
            "slot_musq": np.einsum(
                "tds,tds->ts", wmu_.reshape(nt, nd, S), wmu_.reshape(nt, nd, S)
            ),
            "lb": np.empty((J, S)),
            "ub": np.empty((J, S)),
        }
        if rank:
            sk = SlotSketch(nt, nd, rank, seed=seed)
            bankv["pmu"], bankv["slot_psq"] = sk.project_bank(wmu_)
            static["wd_p"], static["wd_psq"] = sk.project_bank(wd_)
        return static, bankv

    # Exact truncated-data evidence, brute force.
    ev = np.empty((J, S))
    for j in range(J):
        n = hz[j] * nd
        quad = ((wd[:n, j : j + 1] - wmu[:n]) ** 2).sum(axis=0)
        ev[j] = -0.5 * quad - (logdiag[hz[j]] + 0.5 * hz[j] * nd * _LOG_2PI)
    return wd, wmu, hz, views, ev


@pytest.mark.parametrize("rank", [0, 2])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_clean_brackets_contain_exact_evidence(seed, rank, monkeypatch):
    monkeypatch.setattr(sketch_mod, "COL_BLOCK", 8)
    nt, nd, J, S = 5, 6, 4, 20
    wd, wmu, _, views, ev = _random_problem(seed, nt, nd, J, S, rank=rank)
    for slots in [(0,), (1, 3), tuple(range(nt))]:
        static, bankv = views(wd, wmu)
        certified_bounds(static, bankv, nd, J, slots, 0, S)
        tol = 1e-9 * np.maximum(1.0, np.abs(ev))
        assert (bankv["lb"] <= ev + tol).all()
        assert (bankv["ub"] >= ev - tol).all()


@pytest.mark.parametrize("rank", [0, 2])
def test_inflation_is_strictly_outward(rank, monkeypatch):
    monkeypatch.setattr(sketch_mod, "COL_BLOCK", 8)
    nt, nd, J, S = 5, 6, 4, 20
    wd, wmu, _, views, _ = _random_problem(3, nt, nd, J, S, rank=rank)
    static0, bankv0 = views(wd, wmu)
    certified_bounds(static0, bankv0, nd, J, (0, 2), 0, S)
    static1, bankv1 = views(wd, wmu)
    certified_bounds(static1, bankv1, nd, J, (0, 2), 0, S, rtol=1e-8)
    assert (bankv1["ub"] > bankv0["ub"]).all()
    assert (bankv1["lb"] < bankv0["lb"]).all()
    # rtol=0 is the default: bitwise identical to not passing it.
    static2, bankv2 = views(wd, wmu)
    certified_bounds(static2, bankv2, nd, J, (0, 2), 0, S, rtol=0.0)
    np.testing.assert_array_equal(bankv2["lb"], bankv0["lb"])
    np.testing.assert_array_equal(bankv2["ub"], bankv0["ub"])


@pytest.mark.parametrize("rank", [0, 2])
@pytest.mark.parametrize("seed", range(5))
def test_perturbed_states_with_budget_inflation_still_contain_exact(
    seed, rank, monkeypatch
):
    """A backend perturbing states inside its budget cannot break the screen."""
    monkeypatch.setattr(sketch_mod, "COL_BLOCK", 8)
    nt, nd, J, S = 5, 6, 4, 20
    rtol = 1e-6
    eps = rtol / 100.0  # perturbation well inside the declared budget
    wd, wmu, hz, views, ev = _random_problem(seed, nt, nd, J, S, rank=rank)
    rng = np.random.default_rng(1000 + seed)
    wd_p = wd * (1.0 + eps * rng.uniform(-1.0, 1.0, wd.shape))
    wmu_p = wmu * (1.0 + eps * rng.uniform(-1.0, 1.0, wmu.shape))
    for slots in [(0,), (1, 3), tuple(range(nt))]:
        static, bankv = views(wd_p, wmu_p)
        certified_bounds(static, bankv, nd, J, slots, 0, S, rtol=rtol)
        assert (bankv["lb"] <= ev).all()
        assert (bankv["ub"] >= ev).all()
