"""Bitwise regression for the batched bank-sketch build (satellite of PR 7).

:meth:`repro.serve.sketch.SlotSketch.project_bank_columns` replaced a
per-slot Python loop over ``P_t @ W_t`` (with a contiguous staging copy of
every column block) by **one** batched gemm per block on the stacked
``(Nt, r, Nd) @ (Nt, Nd, block)`` operands.  The fabric's
shard-layout-independence guarantee pins the *old* arithmetic, so the new
build must be bitwise identical to it — this file reimplements the
historical loop verbatim and asserts exact equality, block boundaries,
partial column ranges and all.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.serve.sketch as sketch_mod
from repro.serve.sketch import SlotSketch


def _legacy_project(sk: SlotSketch, W, out_proj, out_psq, c0, c1, col_block):
    """The pre-batching per-slot loop, verbatim (contiguous staging copy)."""
    nt, nd, r = sk.nt, sk.nd, sk.rank
    for b0 in range(c0, c1, col_block):
        b1 = min(b0 + col_block, c1)
        Wb = np.ascontiguousarray(W[:, b0:b1])
        for t in range(nt):
            pb = sk.P[t * r : (t + 1) * r] @ Wb[t * nd : (t + 1) * nd]
            out_proj[t * r : (t + 1) * r, b0:b1] = pb
            out_psq[t, b0:b1] = np.einsum("ij,ij->j", pb, pb)


@pytest.mark.parametrize("nt,nd,rank,S", [(6, 8, 3, 37), (4, 5, 5, 12), (3, 7, 1, 9)])
def test_batched_build_bitwise_equals_legacy_loop(nt, nd, rank, S, monkeypatch):
    monkeypatch.setattr(sketch_mod, "COL_BLOCK", 8)
    sk = SlotSketch(nt, nd, rank, seed=13)
    W = np.random.default_rng(5).standard_normal((nt * nd, S))

    new_proj = np.empty((nt * rank, S))
    new_psq = np.empty((nt, S))
    sk.project_bank_columns(W, new_proj, new_psq, 0, S)

    ref_proj = np.empty((nt * rank, S))
    ref_psq = np.empty((nt, S))
    _legacy_project(sk, W, ref_proj, ref_psq, 0, S, sketch_mod.COL_BLOCK)

    np.testing.assert_array_equal(new_proj, ref_proj)
    np.testing.assert_array_equal(new_psq, ref_psq)


def test_partial_column_range_matches_legacy_bitwise(monkeypatch):
    monkeypatch.setattr(sketch_mod, "COL_BLOCK", 8)
    nt, nd, rank, S = 5, 6, 2, 40
    sk = SlotSketch(nt, nd, rank, seed=2)
    W = np.random.default_rng(9).standard_normal((nt * nd, S))
    # Block-aligned shard [16, 40), the fabric's shard shape.
    c0, c1 = 16, 40
    new_proj = np.zeros((nt * rank, S))
    new_psq = np.zeros((nt, S))
    sk.project_bank_columns(W, new_proj, new_psq, c0, c1)
    ref_proj = np.zeros((nt * rank, S))
    ref_psq = np.zeros((nt, S))
    _legacy_project(sk, W, ref_proj, ref_psq, c0, c1, sketch_mod.COL_BLOCK)
    np.testing.assert_array_equal(new_proj, ref_proj)
    np.testing.assert_array_equal(new_psq, ref_psq)
    # Columns outside the range were never touched.
    assert not new_proj[:, :c0].any() and not new_psq[:, :c0].any()


def test_project_bank_full_matches_columns_and_is_readonly():
    nt, nd, rank, S = 4, 6, 3, 20
    sk = SlotSketch(nt, nd, rank, seed=0)
    W = np.random.default_rng(1).standard_normal((nt * nd, S))
    proj, psq = sk.project_bank(W)
    ref_proj = np.empty((nt * rank, S))
    ref_psq = np.empty((nt, S))
    sk.project_bank_columns(W, ref_proj, ref_psq, 0, S)
    np.testing.assert_array_equal(proj, ref_proj)
    np.testing.assert_array_equal(psq, ref_psq)
    assert not proj.flags.writeable and not psq.flags.writeable
