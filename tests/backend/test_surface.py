"""Backend surface through the serving stack: memo keys, config, reports.

The seam is only safe if every cache that stores backend-produced arrays
keys on the backend identity, and only *useful* if operators can see
which backend served a request.  What must hold:

* ``ToeplitzBayesianInversion.streaming_state`` memoizes one engine per
  backend key and re-assembly invalidates all of them.
* ``ScenarioIdentifier.sketch`` keys its memo on ``(rank, seed, backend,
  device, dtype)`` — the PR-7 fix for the backend-blind ``(rank, seed)``
  key.
* ``BatchedPhase4Server`` accepts a backend, hands it to the engine, and
  reports ``backend_is_exact`` / ``backend_screen_rtol``.
* ``FabricConfig`` grows a ``backend`` knob; ``FabricReport`` carries the
  backend name; on numpy the fabric's screen rtol is exactly zero.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import default_backend
from repro.serve import BatchedPhase4Server, ScenarioIdentifier
from repro.serve.fabric import FabricConfig, FabricReport, ServingFabric


def test_streaming_state_memo_is_per_backend_key(bk_inversion):
    inv = bk_inversion
    eng = inv.streaming_state()
    assert inv._streaming[default_backend().key()] is eng
    # Same key -> same engine, every spelling.
    assert inv.streaming_state(backend="np") is eng
    assert inv.streaming_state(backend=default_backend()) is eng


def test_sketch_memo_key_includes_backend_identity(bk_inversion, bk_bank):
    inv = bk_inversion
    ident = ScenarioIdentifier.from_bank(inv.streaming_state(), bk_bank)
    sk1 = ident.sketch(2, seed=1)
    sk2 = ident.sketch(2, seed=1)
    assert sk1 is sk2
    key = (2, 1, "gaussian") + default_backend().key()
    assert key in ident._sketches
    # Different (rank, seed, mode) -> distinct entries, same backend.
    ident.sketch(3, seed=1)
    assert (3, 1, "gaussian") + default_backend().key() in ident._sketches
    ident.sketch(2, seed=1, mode="pca")
    assert (2, 1, "pca") + default_backend().key() in ident._sketches
    assert len(ident._sketches) == 3


def test_server_surfaces_backend_and_report_keys(bk_inversion):
    server = BatchedPhase4Server(bk_inversion)
    assert server.backend is default_backend()
    eng = server.streaming_engine()
    assert eng is bk_inversion.streaming_state()
    rep = server.report()
    assert rep["backend_is_exact"] == 1.0
    assert rep["backend_screen_rtol"] == 0.0
    with pytest.raises(ValueError):
        BatchedPhase4Server(bk_inversion, backend="not-a-backend")


def test_fabric_config_backend_knob_and_report(bk_inversion, bk_bank, bk_streams):
    _, _, d_obs = bk_streams
    assert FabricConfig().backend == "numpy"
    assert FabricReport().backend == "numpy"
    with ServingFabric(
        bk_inversion, [bk_bank], n_workers=0, screen_min_scenarios=4,
        screen_top=2, sketch_rank=2,
    ) as fabric:
        assert fabric.backend is default_backend()
        assert fabric._screen_rtol == 0.0
        assert fabric.engine is bk_inversion.streaming_state()
        res = fabric.identify(d_obs[:, :, :3], k_slots=bk_inversion.nt)
        assert fabric.last_report.backend == "numpy"
        # Certified sharded result equals the flat identifier's.
        ident = ScenarioIdentifier.from_bank(
            bk_inversion.streaming_state(), bk_bank
        )
        sess = ident.open(d_obs[:, :, :3]).advance(bk_inversion.nt)
        np.testing.assert_allclose(
            res.log_evidence, sess.log_evidence(), rtol=0, atol=1e-10
        )

    with pytest.raises(ValueError):
        ServingFabric(bk_inversion, n_workers=0, backend="no-such-backend").close()
