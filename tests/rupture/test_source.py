"""Source-time functions and magnitude utilities."""

import numpy as np
import pytest

from repro.rupture.source import (
    BoxcarSTF,
    SmoothRampSTF,
    TriangleSTF,
    magnitude_to_moment,
    moment_magnitude,
    seismic_moment,
)

ALL_STFS = [BoxcarSTF, TriangleSTF, SmoothRampSTF]


@pytest.mark.parametrize("cls", ALL_STFS)
class TestSTFInvariants:
    def test_rate_integrates_to_one(self, cls):
        stf = cls(rise_time=0.7)
        t = np.linspace(-0.2, 1.2, 20001)
        integral = float(np.trapezoid(stf.rate(t), t))
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_cumulative_is_integral_of_rate(self, cls):
        stf = cls(rise_time=0.5)
        t = np.linspace(-0.1, 0.8, 2001)
        from scipy.integrate import cumulative_trapezoid

        num = cumulative_trapezoid(stf.rate(t), t, initial=0.0)
        np.testing.assert_allclose(stf.cumulative(t), num, atol=2e-3)

    def test_causal_support(self, cls):
        stf = cls(rise_time=1.0)
        t = np.array([-1.0, -1e-9, 1.0 + 1e-9, 5.0])
        np.testing.assert_allclose(stf.rate(t), 0.0, atol=1e-14)
        assert stf.cumulative(np.array([-0.5]))[0] == 0.0
        assert stf.cumulative(np.array([2.0]))[0] == 1.0

    def test_rate_nonnegative(self, cls):
        stf = cls(rise_time=0.3)
        t = np.linspace(-0.1, 0.5, 500)
        assert np.all(stf.rate(t) >= 0)

    def test_cumulative_monotone(self, cls):
        stf = cls(rise_time=0.3)
        t = np.linspace(-0.1, 0.5, 500)
        assert np.all(np.diff(stf.cumulative(t)) >= -1e-15)

    def test_validation(self, cls):
        with pytest.raises(ValueError):
            cls(rise_time=0.0)


def test_triangle_peak_at_half_rise():
    stf = TriangleSTF(rise_time=1.0)
    t = np.linspace(0, 1, 1001)
    r = stf.rate(t)
    assert t[np.argmax(r)] == pytest.approx(0.5, abs=1e-2)
    assert r.max() == pytest.approx(2.0, rel=1e-2)


def test_smooth_ramp_is_c1():
    stf = SmoothRampSTF(rise_time=1.0)
    # rate is continuous at onset and arrest (zero at both)
    eps = 1e-6
    assert stf.rate(np.array([eps]))[0] < 1e-4
    assert stf.rate(np.array([1.0 - eps]))[0] < 1e-4


class TestMagnitude:
    def test_moment_formula(self):
        m0 = seismic_moment(np.array([2.0]), np.array([1e6]), rigidity=30e9)
        assert m0 == pytest.approx(6e16)

    def test_mw_hanks_kanamori(self):
        # Mw 9.0 <-> M0 ~ 3.5e22 N m
        assert moment_magnitude(3.55e22) == pytest.approx(9.0, abs=0.01)

    def test_roundtrip(self):
        for mw in (6.0, 7.5, 8.7, 9.2):
            assert moment_magnitude(magnitude_to_moment(mw)) == pytest.approx(mw)

    def test_mw87_scale(self):
        # A margin-wide Cascadia rupture: ~1000 km x 100 km, ~10 m slip.
        m0 = seismic_moment(np.array([10.0]), np.array([1e6 * 1e5]), rigidity=30e9)
        assert moment_magnitude(m0) == pytest.approx(8.7, abs=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            seismic_moment(np.array([1.0]), np.array([1.0]), rigidity=-1.0)
        with pytest.raises(ValueError):
            moment_magnitude(0.0)
