"""Random fields: normalization, spectra, interpolation, tapers."""

import numpy as np
import pytest

from repro.rupture.randomfields import (
    cosine_taper,
    gaussian_random_field,
    interpolate_to_points,
    spectral_field,
    von_karman_field,
)


class TestSynthesis:
    def test_unit_variance_zero_mean(self):
        f = von_karman_field((64, 64), (1.0, 1.0), 0.2, seed=0)
        assert abs(float(f.mean())) < 1e-12
        assert float(f.std()) == pytest.approx(1.0, abs=1e-12)

    def test_deterministic_by_seed(self):
        a = von_karman_field((32,), (1.0,), 0.2, seed=5)
        b = von_karman_field((32,), (1.0,), 0.2, seed=5)
        c = von_karman_field((32,), (1.0,), 0.2, seed=6)
        np.testing.assert_array_equal(a, b)
        assert not np.allclose(a, c)

    def test_correlation_length_controls_smoothness(self):
        rough = von_karman_field((256,), (1.0,), 0.01, seed=1)
        smooth = von_karman_field((256,), (1.0,), 0.3, seed=1)
        # mean-square increment of the smooth field is far smaller
        assert np.mean(np.diff(smooth) ** 2) < 0.2 * np.mean(np.diff(rough) ** 2)

    def test_hurst_controls_high_frequency_content(self):
        lo_h = von_karman_field((256,), (1.0,), 0.1, hurst=0.1, seed=2)
        hi_h = von_karman_field((256,), (1.0,), 0.1, hurst=1.0, seed=2)
        assert np.mean(np.diff(hi_h) ** 2) < np.mean(np.diff(lo_h) ** 2)

    def test_gaussian_field_smoother_than_vonkarman(self):
        g = gaussian_random_field((256,), (1.0,), 0.1, seed=3)
        v = von_karman_field((256,), (1.0,), 0.1, hurst=0.5, seed=3)
        assert np.mean(np.diff(g) ** 2) < np.mean(np.diff(v) ** 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            von_karman_field((32,), (1.0,), -0.1)
        with pytest.raises(ValueError):
            von_karman_field((32,), (1.0,), 0.1, hurst=1.5)
        with pytest.raises(ValueError):
            spectral_field((8,), (1.0,), lambda k: np.zeros_like(k))


class TestInterpolation:
    def test_exact_at_grid_nodes(self):
        f = von_karman_field((20, 15), (2.0, 1.0), 0.3, seed=0)
        ax = [np.linspace(0, 2, 20), np.linspace(0, 1, 15)]
        pts = np.stack(np.meshgrid(ax[0][::3], ax[1][::4], indexing="ij"), -1).reshape(-1, 2)
        vals = interpolate_to_points(f, ax, pts)
        np.testing.assert_allclose(vals, f[::3, ::4].reshape(-1), atol=1e-12)

    def test_linear_fields_exact(self):
        ax = [np.linspace(0, 1, 9), np.linspace(0, 1, 7)]
        X, Y = np.meshgrid(ax[0], ax[1], indexing="ij")
        f = 2 * X - 3 * Y
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, (20, 2))
        vals = interpolate_to_points(f, ax, pts)
        np.testing.assert_allclose(vals, 2 * pts[:, 0] - 3 * pts[:, 1], atol=1e-12)

    def test_clamps_outside_points(self):
        ax = [np.linspace(0, 1, 5)]
        f = np.linspace(0, 1, 5)
        vals = interpolate_to_points(f, ax, np.array([[-0.5], [1.5]]))
        np.testing.assert_allclose(vals, [0.0, 1.0], atol=1e-12)


class TestTaper:
    def test_zero_at_edges_one_inside(self):
        x = np.linspace(0, 1, 101)
        t = cosine_taper(x, 0.2, 0.8, 0.1)
        assert np.all(t[x <= 0.2] == 0.0)
        assert np.all(t[x >= 0.8] == 0.0)
        center = t[np.abs(x - 0.5) < 0.1]
        np.testing.assert_allclose(center, 1.0, atol=1e-12)

    def test_smooth_monotone_ramp(self):
        x = np.linspace(0.2, 0.3, 50)
        t = cosine_taper(x, 0.2, 0.8, 0.1)
        assert np.all(np.diff(t) >= 0)
        assert np.all((t >= 0) & (t <= 1))

    def test_2d_taper_product(self):
        pts = np.array([[0.5, 0.5], [0.0, 0.5], [0.5, 0.0]])
        t = cosine_taper(pts, [0.0, 0.0], [1.0, 1.0], [0.2, 0.2])
        assert t[0] == pytest.approx(1.0)
        assert t[1] == 0.0 and t[2] == 0.0
