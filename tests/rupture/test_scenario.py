"""Margin-wide scenarios: locked zone, determinism, metadata, smoothing."""

import numpy as np
import pytest

from repro.rupture.scenario import margin_wide_scenario
from repro.rupture.transfer import elastic_smoothing_matrix, gaussian_smoothing_1d


class TestScenario:
    def test_shapes_and_positivity(self, op2d):
        sc = margin_wide_scenario(op2d.bottom_trace, nt=10, dt_obs=0.2, seed=1)
        assert sc.m.shape == (10, op2d.bottom_trace.n)
        assert sc.nt == 10 and sc.nm == op2d.bottom_trace.n
        assert np.all(sc.displacement >= -1e-12)
        assert sc.info["peak_uplift"] > 0

    def test_peak_normalization(self, op2d):
        sc = margin_wide_scenario(
            op2d.bottom_trace, nt=10, dt_obs=0.2, peak_uplift=0.37, seed=1
        )
        assert sc.rupture.slip.max() == pytest.approx(0.37, rel=1e-12)

    def test_deterministic(self, op2d):
        a = margin_wide_scenario(op2d.bottom_trace, nt=8, dt_obs=0.25, seed=3)
        b = margin_wide_scenario(op2d.bottom_trace, nt=8, dt_obs=0.25, seed=3)
        c = margin_wide_scenario(op2d.bottom_trace, nt=8, dt_obs=0.25, seed=4)
        np.testing.assert_array_equal(a.m, b.m)
        assert not np.allclose(a.m, c.m)

    def test_locked_zone_confinement(self, op2d):
        sc = margin_wide_scenario(
            op2d.bottom_trace, nt=10, dt_obs=0.2, locked_zone=(0.2, 0.5), seed=0,
            smoothing_length_frac=0.01,
        )
        x = op2d.bottom_trace.coords[:, 0]
        lo, hi = x.min(), x.max()
        span = hi - lo
        outside = (x < lo + 0.15 * span) | (x > lo + 0.60 * span)
        # Slip (before smoothing leakage) is concentrated in the zone.
        assert sc.rupture.slip[outside].max() < 0.2 * sc.rupture.slip.max()

    def test_causality_against_front(self, op2d):
        sc = margin_wide_scenario(op2d.bottom_trace, nt=12, dt_obs=0.25, seed=2)
        ta = sc.rupture.arrival_times()
        times = 0.25 * np.arange(1, 13)
        for j in range(12):
            quiet = times[j] <= ta
            np.testing.assert_allclose(sc.m[j][quiet], 0.0, atol=1e-13)

    def test_displacement_consistency_when_complete(self, op2d):
        sc = margin_wide_scenario(
            op2d.bottom_trace, nt=40, dt_obs=0.25, seed=2,
            rise_time=0.5, rupture_velocity=2.0,
        )
        assert sc.rupture.duration() < 40 * 0.25
        np.testing.assert_allclose(
            sc.displacement, sc.rupture.final_displacement(), atol=1e-12
        )

    def test_magnitude_metadata(self, op2d):
        sc = margin_wide_scenario(op2d.bottom_trace, nt=10, dt_obs=0.2, seed=0)
        assert "mw_analog" in sc.info and np.isfinite(sc.info["mw_analog"])
        assert sc.info["moment"] > 0

    def test_3d_scenario(self, op3d):
        sc = margin_wide_scenario(op3d.bottom_trace, nt=8, dt_obs=0.3, seed=1)
        assert sc.m.shape == (8, op3d.bottom_trace.n)
        assert np.all(sc.displacement >= -1e-12)

    def test_validation(self, op2d):
        with pytest.raises(ValueError):
            margin_wide_scenario(op2d.bottom_trace, nt=0, dt_obs=0.2)
        with pytest.raises(ValueError):
            margin_wide_scenario(op2d.bottom_trace, nt=5, dt_obs=0.2, peak_uplift=-1.0)


class TestElasticSmoothing:
    def test_exact_on_constants(self):
        x = np.sort(np.random.default_rng(0).uniform(0, 1, 20))
        W = gaussian_smoothing_1d(x, 0.1)
        np.testing.assert_allclose(W @ np.ones(20), 1.0, atol=1e-12)

    def test_contractive_max_norm(self, rng):
        x = np.linspace(0, 1, 30)
        W = gaussian_smoothing_1d(x, 0.15)
        v = rng.standard_normal(30)
        assert np.abs(W @ v).max() <= np.abs(v).max() + 1e-12

    def test_reduces_roughness(self, rng):
        x = np.linspace(0, 1, 50)
        W = gaussian_smoothing_1d(x, 0.1)
        v = rng.standard_normal(50)
        assert np.mean(np.diff(W @ v) ** 2) < 0.5 * np.mean(np.diff(v) ** 2)

    def test_tensor_kron(self):
        ax = [np.linspace(0, 1, 6), np.linspace(0, 1, 5)]
        W = elastic_smoothing_matrix(ax, 0.2)
        assert W.shape == (30, 30)
        np.testing.assert_allclose(W @ np.ones(30), 1.0, atol=1e-12)

    def test_single_node_identity(self):
        W = gaussian_smoothing_1d(np.array([0.3]), 0.1)
        np.testing.assert_array_equal(W, [[1.0]])

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_smoothing_1d(np.linspace(0, 1, 5), -0.1)
