"""Kinematic rupture: causality, slot averaging, consistency."""

import numpy as np
import pytest

from repro.rupture.kinematic import KinematicRupture
from repro.rupture.source import BoxcarSTF, SmoothRampSTF


@pytest.fixture()
def rupture():
    x = np.linspace(0, 10, 21)
    slip = 1.0 + 0.5 * np.sin(x)
    return KinematicRupture(
        coords=x,
        slip=slip,
        hypocenter=np.array([2.0]),
        rupture_velocity=2.0,
        stf=SmoothRampSTF(rise_time=1.0),
        onset=0.5,
    )


class TestArrivals:
    def test_arrival_times(self, rupture):
        ta = rupture.arrival_times()
        assert ta[4] == pytest.approx(0.5)  # the hypocenter node (x = 2)
        assert ta[-1] == pytest.approx(0.5 + 8.0 / 2.0)

    def test_duration(self, rupture):
        assert rupture.duration() == pytest.approx(0.5 + 4.0 + 1.0)


class TestCausality:
    def test_no_slip_before_arrival(self, rupture):
        ta = rupture.arrival_times()
        t = np.linspace(0, 6, 61)
        rate = rupture.slip_rate(t)
        for i, ti in enumerate(t):
            quiet = ti <= ta
            np.testing.assert_allclose(rate[i, quiet], 0.0, atol=1e-14)

    def test_slot_averages_causal(self, rupture):
        m = rupture.slot_averages(nt=12, dt_obs=0.5)
        ta = rupture.arrival_times()
        edges = 0.5 * np.arange(13)
        for j in range(12):
            quiet = edges[j + 1] <= ta
            np.testing.assert_allclose(m[j, quiet], 0.0, atol=1e-14)


class TestConsistency:
    def test_total_slip_recovered(self, rupture):
        nt = 16  # covers duration 5.5 at dt 0.5 -> 8.0
        m = rupture.slot_averages(nt=nt, dt_obs=0.5)
        np.testing.assert_allclose(0.5 * m.sum(axis=0), rupture.slip, atol=1e-12)

    def test_slot_average_is_exact_cumulative_increment(self, rupture):
        m = rupture.slot_averages(nt=8, dt_obs=0.5)
        edges = 0.5 * np.arange(9)
        cum = rupture.cumulative_slip(edges)
        np.testing.assert_allclose(m, np.diff(cum, axis=0) / 0.5, atol=1e-13)

    def test_boxcar_constant_rate_during_rise(self):
        x = np.array([0.0])
        r = KinematicRupture(
            coords=x, slip=np.array([2.0]), hypocenter=np.array([0.0]),
            rupture_velocity=1.0, stf=BoxcarSTF(rise_time=1.0),
        )
        # rupture arrives at t=0; rate is 2.0 for t in [0, 1)
        m = r.slot_averages(nt=4, dt_obs=0.5)
        np.testing.assert_allclose(m[:2, 0], 2.0, atol=1e-13)
        np.testing.assert_allclose(m[2:, 0], 0.0, atol=1e-13)

    def test_final_displacement(self, rupture):
        np.testing.assert_array_equal(rupture.final_displacement(), rupture.slip)


class TestValidation:
    def test_negative_slip_rejected(self):
        with pytest.raises(ValueError):
            KinematicRupture(
                coords=np.array([0.0]), slip=np.array([-1.0]),
                hypocenter=np.array([0.0]), rupture_velocity=1.0,
            )

    def test_dimension_mismatches(self):
        with pytest.raises(ValueError):
            KinematicRupture(
                coords=np.zeros((3, 1)), slip=np.ones(2),
                hypocenter=np.array([0.0]), rupture_velocity=1.0,
            )
        with pytest.raises(ValueError):
            KinematicRupture(
                coords=np.zeros((3, 2)), slip=np.ones(3),
                hypocenter=np.array([0.0]), rupture_velocity=1.0,
            )

    def test_bad_velocity_or_onset(self):
        with pytest.raises(ValueError):
            KinematicRupture(
                coords=np.array([0.0]), slip=np.array([1.0]),
                hypocenter=np.array([0.0]), rupture_velocity=0.0,
            )
        with pytest.raises(ValueError):
            KinematicRupture(
                coords=np.array([0.0]), slip=np.array([1.0]),
                hypocenter=np.array([0.0]), rupture_velocity=1.0, onset=-1.0,
            )

    def test_2d_fault_plane(self):
        rng = np.random.default_rng(0)
        coords = rng.uniform(0, 1, (30, 2))
        r = KinematicRupture(
            coords=coords, slip=np.ones(30), hypocenter=np.array([0.5, 0.5]),
            rupture_velocity=1.0,
        )
        ta = r.arrival_times()
        d = np.linalg.norm(coords - 0.5, axis=1)
        np.testing.assert_allclose(ta, d, atol=1e-13)
