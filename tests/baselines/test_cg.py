"""SoA CG baseline: convergence to the MAP, iteration counts, PDE ledger."""

import numpy as np
import pytest

from repro.baselines.cg import (
    fft_hessian_operator,
    pde_hessian_operator,
    solve_map_cg,
)


class TestFFTMode:
    def test_converges_to_exact_map(self, F2d, prior2d, observed2d, inversion2d):
        _, noise, d_obs = observed2d
        m_map = inversion2d.infer(d_obs)
        H = fft_hessian_operator(F2d, prior2d, noise)
        res = solve_map_cg(H, d_obs, rtol=1e-10)
        assert res.converged
        err = np.linalg.norm(res.m - m_map) / np.linalg.norm(m_map)
        assert err < 1e-6
        assert res.pde_solves == 0

    def test_residual_history_decreasing_overall(self, F2d, prior2d, observed2d):
        _, noise, d_obs = observed2d
        H = fft_hessian_operator(F2d, prior2d, noise)
        res = solve_map_cg(H, d_obs, rtol=1e-8)
        assert res.residuals[-1] < 1e-6 * res.residuals[0]

    def test_iterations_scale_with_data_dimension(
        self, F2d, prior2d, observed2d
    ):
        # Fewer data (leading sub-window) -> fewer CG iterations: the
        # Section IV claim that iteration count tracks the data dimension.
        _, noise, d_obs = observed2d
        H = fft_hessian_operator(F2d, prior2d, noise)
        full = solve_map_cg(H, d_obs, rtol=1e-8)
        d_small = np.zeros_like(d_obs)
        d_small[:2] = d_obs[:2]
        small = solve_map_cg(H, d_small, rtol=1e-8)
        # The zero-data tail still regularizes, but the Krylov space needed
        # is smaller; requires strictly fewer iterations.
        assert small.iterations <= full.iterations

    def test_maxiter_cap(self, F2d, prior2d, observed2d):
        _, noise, d_obs = observed2d
        H = fft_hessian_operator(F2d, prior2d, noise)
        res = solve_map_cg(H, d_obs, rtol=1e-14, maxiter=3)
        assert res.iterations == 3 and not res.converged

    def test_warm_start(self, F2d, prior2d, observed2d, inversion2d):
        _, noise, d_obs = observed2d
        m_map = inversion2d.infer(d_obs)
        H = fft_hessian_operator(F2d, prior2d, noise)
        res = solve_map_cg(H, d_obs, rtol=1e-10, m0=m_map.copy())
        assert res.iterations <= 2

    def test_callback_invoked(self, F2d, prior2d, observed2d):
        _, noise, d_obs = observed2d
        H = fft_hessian_operator(F2d, prior2d, noise)
        seen = []
        solve_map_cg(H, d_obs, rtol=1e-6, callback=lambda i, r: seen.append((i, r)))
        assert len(seen) >= 1


class TestPDEMode:
    def test_pde_mode_matches_fft_mode(
        self, prop2d, sensors2d, F2d, prior2d, observed2d
    ):
        _, noise, d_obs = observed2d
        Hf = fft_hessian_operator(F2d, prior2d, noise)
        Hp = pde_hessian_operator(prop2d, sensors2d, prior2d, noise)
        rf = solve_map_cg(Hf, d_obs, rtol=1e-9)
        rp = solve_map_cg(Hp, d_obs, rtol=1e-9)
        err = np.linalg.norm(rf.m - rp.m) / np.linalg.norm(rf.m)
        assert err < 1e-6

    def test_pde_solve_ledger(self, prop2d, sensors2d, prior2d, observed2d):
        _, noise, d_obs = observed2d
        Hp = pde_hessian_operator(prop2d, sensors2d, prior2d, noise)
        res = solve_map_cg(Hp, d_obs, rtol=1e-7, maxiter=20)
        # rhs costs 1 adjoint solve; each iteration a forward/adjoint pair.
        assert res.pde_solves == 1 + 2 * res.iterations

    def test_phase1_vs_cg_solve_counts(self, prop2d, sensors2d, prior2d, observed2d):
        # The paper's economics: Phase 1 needs Nd solves; CG needs
        # ~2x iterations, and iterations ~ data dimension >> Nd.
        _, noise, d_obs = observed2d
        Hp = pde_hessian_operator(prop2d, sensors2d, prior2d, noise)
        res = solve_map_cg(Hp, d_obs, rtol=1e-9)
        assert res.pde_solves > 2 * sensors2d.n
