"""POD-ROM baseline: construction exactness and the N-width failure."""

import numpy as np
import pytest

from repro.baselines.diffusive import diffusive_rom_study
from repro.baselines.rom import (
    PODReducedModel,
    pod_energy_spectrum,
    snapshot_matrix,
)


@pytest.fixture(scope="module")
def rom_setup(op2d, prop2d, sensors2d):
    snaps = snapshot_matrix(prop2d, n_trajectories=6, seed=0)
    return snaps


class TestConstruction:
    def test_snapshot_shapes(self, rom_setup, op2d, prop2d):
        snaps = rom_setup
        assert snaps.shape == (op2d.nstate, 6 * prop2d.n_slots)

    def test_basis_orthonormal(self, rom_setup, prop2d):
        rom = PODReducedModel.build(prop2d, rom_setup, rank=12)
        np.testing.assert_allclose(rom.V.T @ rom.V, np.eye(12), atol=1e-10)
        assert rom.rank == 12

    def test_projection_consistency(self, rom_setup, prop2d, rng):
        """S_r and W_r are genuine Galerkin projections of the slot map."""
        from repro.baselines.rom import _slot_input_response, _slot_map_apply

        rom = PODReducedModel.build(prop2d, rom_setup, rank=8)
        z = rng.standard_normal(8)
        lhs = rom.Sr @ z
        rhs = rom.V.T @ _slot_map_apply(prop2d, rom.V @ z[:, None])[:, 0]
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)
        m = rng.standard_normal(prop2d.op.n_parameters)
        np.testing.assert_allclose(
            rom.Wr @ m,
            rom.V.T @ _slot_input_response(prop2d, m[:, None])[:, 0],
            atol=1e-10,
        )

    def test_training_trajectory_exact_at_full_rank(self, prop2d, sensors2d, op2d):
        """On a training forcing, the full-snapshot-rank ROM reproduces the
        full model (the snapshots span that trajectory exactly)."""
        rng = np.random.default_rng(3)
        nt, nm = prop2d.n_slots, op2d.n_parameters
        m = rng.standard_normal((nt, nm))
        # snapshots from exactly this trajectory
        op = prop2d.op
        from repro.fem.timestep import rk4_forced_step

        X = op.zero_state(1)
        cols = []
        for j in range(nt):
            F = op.forcing(m[j][:, None])
            for _ in range(prop2d.n_substeps):
                X = rk4_forced_step(op.apply, X, prop2d.dt, F)
            cols.append(X[:, 0].copy())
        snaps = np.stack(cols, axis=1)
        rom = PODReducedModel.build(prop2d, snaps, rank=nt)
        err = rom.relative_observation_error(m, sensors2d)
        assert err < 1e-8

    def test_rank_validation(self, rom_setup, prop2d):
        with pytest.raises(ValueError):
            PODReducedModel.build(prop2d, rom_setup, rank=0)
        with pytest.raises(ValueError):
            PODReducedModel.build(prop2d, rom_setup, rank=10_000)


class TestNWidth:
    def test_wave_spectrum_decays_slowly(self, rom_setup):
        sv = pod_energy_spectrum(rom_setup)
        n = sv.size
        # mid-spectrum singular value still a large fraction of the top
        assert sv[n // 2] / sv[0] > 0.1

    def test_diffusion_spectrum_decays_fast(self):
        sv, _ = diffusive_rom_study(nt=16, n_trajectories=4)
        n = sv.size
        assert sv[n // 4] / sv[0] < 0.05

    def test_wave_rom_fails_at_affordable_rank(
        self, rom_setup, prop2d, sensors2d, op2d
    ):
        """Held-out forcing: the wave ROM misses badly at small rank."""
        rng = np.random.default_rng(9)
        nt, nm = prop2d.n_slots, op2d.n_parameters
        m = rng.standard_normal((nt, nm))
        for j in range(1, nt):
            m[j] = 0.6 * m[j - 1] + 0.4 * m[j]
        rom = PODReducedModel.build(prop2d, rom_setup, rank=10)
        assert rom.relative_observation_error(m, sensors2d) > 0.5

    def test_diffusion_rom_succeeds_at_same_rank(self):
        _, rank_error = diffusive_rom_study(nt=16, n_trajectories=4)
        assert rank_error(10) < 0.1

    def test_wave_error_decreases_but_slowly(
        self, rom_setup, prop2d, sensors2d, op2d
    ):
        rng = np.random.default_rng(4)
        nt, nm = prop2d.n_slots, op2d.n_parameters
        m = rng.standard_normal((nt, nm))
        for j in range(1, nt):
            m[j] = 0.6 * m[j - 1] + 0.4 * m[j]
        errs = [
            PODReducedModel.build(prop2d, rom_setup, rank=r)
            .relative_observation_error(m, sensors2d)
            for r in (5, 20, 50)
        ]
        assert errs[-1] <= errs[0] + 0.05  # roughly monotone
        assert errs[-1] > 0.2  # ... but still far from converged
