"""Spectrum analysis and the low-rank baseline's structural failure."""

import numpy as np
import pytest

from repro.baselines.diffusive import diffusive_p2o_operator
from repro.baselines.lowrank import LowRankPosterior, randomized_eigsh
from repro.baselines.spectrum import (
    effective_rank,
    misfit_hessian_spectrum,
    prior_preconditioned_misfit,
    spectrum_report,
)
from repro.inference.noise import NoiseModel
from repro.inference.prior import BiLaplacianPrior, SpatioTemporalPrior


@pytest.fixture(scope="module")
def wave_spectrum(F2d, prior2d, observed2d, inversion2d):
    _, noise, _ = observed2d
    K_misfit = inversion2d.K - np.diag(noise.flat_variance())
    return misfit_hessian_spectrum(F2d, prior2d, noise, K_misfit=K_misfit)


@pytest.fixture(scope="module")
def diffusive_problem(F2d, prior2d):
    nm, nd, nt = F2d.n_in, F2d.n_out, F2d.nt
    Fd, _ = diffusive_p2o_operator(
        n_grid=nm, n_sensors=nd, nt=nt, dt_obs=0.3, diffusivity=0.5
    )
    sp = BiLaplacianPrior.from_correlation(
        [np.linspace(0, 1, nm)], sigma=0.3, correlation_length=0.08
    )
    prior = SpatioTemporalPrior(sp, nt)
    rng = np.random.default_rng(3)
    d_clean = Fd.matvec(prior.sample(rng, 1)[:, :, 0])
    noise = NoiseModel.relative(d_clean, 0.01)
    return Fd, prior, noise, d_clean


class TestSpectrum:
    def test_wave_effective_rank_is_data_dimension(self, wave_spectrum, F2d):
        # The paper's Section IV claim at matched 1% noise.
        n_data = F2d.nt * F2d.n_out
        r = effective_rank(wave_spectrum)
        assert r >= 0.9 * n_data

    def test_eigenvalues_nonnegative_sorted(self, wave_spectrum):
        assert np.all(wave_spectrum >= 0)
        assert np.all(np.diff(wave_spectrum) <= 1e-9 * wave_spectrum[0])

    def test_matches_parameter_space_eigenvalues(
        self, F2d, prior2d, observed2d, dense_reference
    ):
        # Nonzero spectrum of the data-space matrix == spectrum of the
        # parameter-space prior-preconditioned misfit Hessian.
        _, noise, _ = observed2d
        eigs_data = misfit_hessian_spectrum(F2d, prior2d, noise)
        Fd = dense_reference["Fd"]
        L = prior2d.apply_sqrt(
            np.eye(prior2d.n).reshape(prior2d.nt, prior2d.nm, prior2d.n)
        ).reshape(prior2d.n, prior2d.n)
        A = np.diag(1.0 / np.sqrt(noise.flat_variance())) @ Fd @ L
        eigs_param = np.sort(np.linalg.eigvalsh(A.T @ A))[::-1][: eigs_data.size]
        np.testing.assert_allclose(
            eigs_data, eigs_param, rtol=1e-6, atol=1e-6 * eigs_data[0]
        )

    def test_report_format(self, wave_spectrum, F2d):
        r, frac, txt = spectrum_report(wave_spectrum, F2d.nt * F2d.n_out, "wave")
        assert "eff. rank" in txt and r > 0 and 0 < frac <= 1.0

    def test_misfit_matrix_psd(self, F2d, prior2d, observed2d, inversion2d):
        _, noise, _ = observed2d
        K_misfit = inversion2d.K - np.diag(noise.flat_variance())
        M = prior_preconditioned_misfit(F2d, prior2d, noise, K_misfit=K_misfit)
        assert np.linalg.eigvalsh(M).min() > -1e-8 * np.abs(M).max()


class TestRandomizedEigsh:
    def test_recovers_dominant_eigenpairs(self, rng):
        n = 40
        Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
        lam = np.concatenate([np.array([50.0, 20.0, 10.0]), np.zeros(n - 3) + 0.01])
        A = (Q * lam) @ Q.T
        vals, vecs = randomized_eigsh(lambda X: A @ X, n, rank=3, rng=rng)
        np.testing.assert_allclose(vals, [50.0, 20.0, 10.0], rtol=1e-6)
        # eigenvector residuals
        for i in range(3):
            r = A @ vecs[:, i] - vals[i] * vecs[:, i]
            assert np.linalg.norm(r) < 1e-5 * vals[i]

    def test_rank_validation(self, rng):
        with pytest.raises(ValueError):
            randomized_eigsh(lambda X: X, 5, rank=0)
        with pytest.raises(ValueError):
            randomized_eigsh(lambda X: X, 5, rank=6)


class TestLowRankFailure:
    def test_wave_error_exceeds_diffusive_at_every_rank(
        self, F2d, prior2d, observed2d, inversion2d, diffusive_problem
    ):
        from repro.inference.bayes import ToeplitzBayesianInversion

        _, noise, d_obs = observed2d
        m_map = inversion2d.infer(d_obs)
        Fd, priord, noised, dd_clean = diffusive_problem
        rng = np.random.default_rng(0)
        dd_obs = noised.add_to(dd_clean, rng)
        invd = ToeplitzBayesianInversion(Fd, priord, noised)
        invd.assemble_data_space_hessian(method="direct")
        md_map = invd.infer(dd_obs)

        n_data = F2d.nt * F2d.n_out
        for rank in (n_data // 4, n_data // 2):
            lw = LowRankPosterior(F2d, prior2d, noise, rank=rank,
                                  rng=np.random.default_rng(1))
            ew = np.linalg.norm(lw.map_estimate(d_obs) - m_map) / np.linalg.norm(m_map)
            ld = LowRankPosterior(Fd, priord, noised, rank=rank,
                                  rng=np.random.default_rng(1))
            ed = np.linalg.norm(ld.map_estimate(dd_obs) - md_map) / np.linalg.norm(md_map)
            assert ew > 5 * ed, (rank, ew, ed)

    def test_full_rank_recovers_exact_map(self, F2d, prior2d, observed2d, inversion2d):
        _, noise, d_obs = observed2d
        m_map = inversion2d.infer(d_obs)
        n = F2d.nt * F2d.n_in
        # rank = data dimension suffices (spectrum has exactly NdNt nonzeros)
        lw = LowRankPosterior(
            F2d, prior2d, noise, rank=F2d.nt * F2d.n_out,
            rng=np.random.default_rng(2), power_iters=4,
        )
        err = np.linalg.norm(lw.map_estimate(d_obs) - m_map) / np.linalg.norm(m_map)
        assert err < 1e-3

    def test_lowrank_variance_below_prior(self, F2d, prior2d, observed2d):
        _, noise, _ = observed2d
        lw = LowRankPosterior(F2d, prior2d, noise, rank=10, rng=np.random.default_rng(3))
        var = lw.pointwise_variance()
        prior_diag = np.tile(prior2d.spatial.marginal_variance(), prior2d.nt)
        assert np.all(var <= prior_diag + 1e-10)
        assert np.all(var >= 0)

    def test_eigenvalues_descending(self, F2d, prior2d, observed2d):
        _, noise, _ = observed2d
        lw = LowRankPosterior(F2d, prior2d, noise, rank=8, rng=np.random.default_rng(4))
        assert np.all(np.diff(lw.eigenvalues) <= 1e-9 * lw.eigenvalues[0])
