"""Cost model: the paper's headline numbers from its own constants."""

import pytest

from repro.baselines.costmodel import (
    MeasuredDemoCosts,
    PaperScaleCosts,
    SoACostModel,
)


@pytest.fixture(scope="module")
def model():
    return SoACostModel(PaperScaleCosts())


class TestPaperNumbers:
    def test_data_dimension(self, model):
        assert model.c.data_dimension == 252_000

    def test_parameter_dimension_one_billion(self, model):
        assert model.c.parameter_dimension == pytest.approx(1.015e9, rel=0.001)

    def test_soa_cg_is_fifty_years(self, model):
        assert model.soa_cg_years() == pytest.approx(50.0, rel=0.05)

    def test_phase1_solves_621(self, model):
        assert model.phase1_solves() == 621

    def test_phase1_hours_538(self, model):
        assert model.phase1_hours() == pytest.approx(538.0, rel=0.01)

    def test_pde_solve_reduction_810x(self, model):
        assert model.pde_solve_reduction() == pytest.approx(810.0, rel=0.01)

    def test_matvec_speedup_260000x(self, model):
        assert model.matvec_speedup() == pytest.approx(260_000.0, rel=0.001)

    def test_online_speedup_ten_billion(self, model):
        s = model.online_speedup()
        assert 5e9 < s < 2e10

    def test_summary_complete(self, model):
        s = model.summary()
        for key in (
            "soa_cg_years", "phase1_hours", "pde_solve_reduction",
            "matvec_speedup", "online_speedup",
        ):
            assert key in s and s[key] > 0

    def test_report_renders(self, model):
        rep = model.report()
        assert "SoA CG time" in rep and "260,000x" in rep


class TestMeasuredScale:
    def test_consistent_ratios(self):
        m = MeasuredDemoCosts(
            n_sensors=12, n_qoi=3, nt=16,
            pde_solve_seconds=0.05, fft_matvec_seconds=1e-4,
            online_seconds=5e-4, cg_iterations=120,
        )
        assert m.soa_seconds() == pytest.approx(12.0)
        assert m.pde_solve_reduction() == pytest.approx(2 * 120 / 15)
        assert m.matvec_speedup() == pytest.approx(1000.0)
        assert m.online_speedup() == pytest.approx(24_000.0)
        assert set(m.summary()) == {
            "soa_seconds", "pde_solve_reduction", "matvec_speedup",
            "online_speedup",
        }
