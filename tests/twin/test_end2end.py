"""End-to-end twin: accuracy, consistency, timers, both Hessian routes."""

import numpy as np
import pytest

from repro.twin.cascadia import CascadiaTwin
from repro.twin.config import TwinConfig


@pytest.fixture(scope="module")
def twin_result():
    twin = CascadiaTwin(TwinConfig.demo_2d())
    result = twin.run_end_to_end()
    return twin, result


class TestAccuracy:
    def test_parameter_recovery(self, twin_result):
        _, res = twin_result
        assert res.parameter_error() < 0.6

    def test_displacement_recovery(self, twin_result):
        _, res = twin_result
        assert res.displacement_error() < 0.4

    def test_forecast_accuracy(self, twin_result):
        _, res = twin_result
        assert res.forecast_error() < 0.2

    def test_forecast_much_better_than_prior_mean(self, twin_result):
        # predicting zero (the prior mean) is far worse
        _, res = twin_result
        zero_err = 1.0
        assert res.forecast_error() < 0.5 * zero_err

    def test_displacement_std_available(self, twin_result):
        twin, res = twin_result
        assert res.displacement_std is not None
        assert res.displacement_std.shape == (twin.operator.n_parameters,)
        assert np.all(res.displacement_std >= 0)

    def test_uncertainty_bounds_truth_mostly(self, twin_result):
        # |truth - map| < 3 std at most parameter points
        _, res = twin_result
        err = np.abs(res.displacement_map - res.scenario.displacement)
        frac_in = np.mean(err <= 3 * res.displacement_std + 1e-12)
        assert frac_in > 0.8


class TestConsistency:
    def test_problem_summary(self, twin_result):
        twin, _ = twin_result
        s = twin.problem_summary()
        cfg = twin.config
        assert s["data_dimension"] == cfg.n_sensors * cfg.n_slots
        assert s["parameter_dimension"] == twin.operator.n_parameters * cfg.n_slots

    def test_table3_report(self, twin_result):
        twin, _ = twin_result
        rep = twin.table3_report()
        assert "form K" in rep and "infer parameters" in rep
        # Phase 4 must be far cheaper than Phase 1 (the whole point).
        t = twin.timers.as_dict()
        t.update(twin.inversion.timers.as_dict())
        assert t["Phase 4: infer parameters"] < 0.2  # the paper's 0.2 s budget
        assert t["Phase 4: infer parameters"] < 0.5 * t["Adjoint p2o"]

    def test_clean_data_from_kernel_matches_pde(self, twin_result):
        twin, res = twin_result
        d_pde = twin.propagator.forward(res.scenario.m, sensors=twin.sensors).d
        np.testing.assert_allclose(
            res.d_clean, d_pde, atol=1e-10 * np.abs(d_pde).max()
        )

    def test_hessian_methods_agree(self):
        twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=8, n_sensors=6))
        twin.setup()
        twin.phase1()
        scenario, d_clean, noise, d_obs = twin.simulate_event()
        inv_fft = twin.phase23(noise, method="fft")
        m_fft = inv_fft.infer(d_obs)
        inv_dir = twin.phase23(noise, method="direct")
        m_dir = inv_dir.infer(d_obs)
        np.testing.assert_allclose(m_fft, m_dir, atol=1e-8 * np.abs(m_dir).max())

    def test_deterministic_given_seed(self):
        r1 = CascadiaTwin(TwinConfig.demo_2d(n_slots=6, n_sensors=5)).run_end_to_end()
        r2 = CascadiaTwin(TwinConfig.demo_2d(n_slots=6, n_sensors=5)).run_end_to_end()
        np.testing.assert_array_equal(r1.m_map, r2.m_map)


class TestVariants:
    def test_3d_twin_runs(self):
        twin = CascadiaTwin(TwinConfig.demo_3d(n_slots=8, nx=6, ny=3))
        res = twin.run_end_to_end()
        assert res.forecast.mean.shape == (8, twin.qoi.n)
        assert res.parameter_error() < 1.5

    def test_flat_and_ridge_bathymetry(self):
        for bathy in ("flat", "ridge"):
            twin = CascadiaTwin(
                TwinConfig.demo_2d(bathymetry=bathy, n_slots=6, n_sensors=5)
            )
            res = twin.run_end_to_end()
            assert np.isfinite(res.forecast_error())

    def test_random_sensor_layout(self):
        twin = CascadiaTwin(
            TwinConfig.demo_2d(sensor_layout="random", n_slots=6, n_sensors=8)
        )
        res = twin.run_end_to_end()
        assert twin.sensors.n == 8
        assert np.isfinite(res.parameter_error())

    def test_temporal_prior_extension(self):
        twin = CascadiaTwin(
            TwinConfig.demo_2d(temporal_rho=0.5, n_slots=6, n_sensors=5)
        )
        res = twin.run_end_to_end(hessian_method="fft")
        assert np.isfinite(res.parameter_error())

    def test_more_sensors_reduce_uncertainty(self):
        stds = []
        for ns in (3, 12):
            twin = CascadiaTwin(TwinConfig.demo_2d(n_sensors=ns, n_slots=8))
            res = twin.run_end_to_end()
            stds.append(float(np.mean(res.displacement_std)))
        assert stds[1] < stds[0]

    def test_sampler_available_after_phase23(self, twin_result):
        twin, res = twin_result
        s = twin.sampler()
        draws = s.sample(res.d_obs, np.random.default_rng(0), k=3)
        assert draws.shape == (twin.config.n_slots, twin.operator.n_parameters, 3)
