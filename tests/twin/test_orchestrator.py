"""Twin orchestrator: KPI scoring rules, scripted chaos, determinism.

Three layers:

* **KPITracker unit semantics** — time-to-identification is
  enters-AND-stays (flapping scores the re-entry), lead time is signed,
  coverage averages over horizons, everything serializes to JSON.
* **EventScript** — seeded generation is reproducible and scenario-
  diverse; corruption application is deterministic in the event record.
* **End-to-end replays** over a live fabric — every event identified,
  queue and direct modes agree, same-seed runs produce byte-identical
  KPI payloads even with a worker kill mid-replay, and the wall clock is
  injectable (no KPI depends on it).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import BatchedPhase4Server, ScenarioBank
from repro.twin import CascadiaTwin, TwinConfig
from repro.twin.kpi import EventKPI, KPITracker, first_exceedance_slot
from repro.twin.orchestrator import (
    EventScript,
    OrchestratorConfig,
    SyntheticEvent,
    TwinOrchestrator,
    corrupt_stream,
)
from repro.util.clock import ManualClock


# ----------------------------------------------------------------------
# KPI scoring rules (no fabric involved)
# ----------------------------------------------------------------------
class TestKPITracker:
    def test_first_exceedance_slot(self):
        q = np.zeros((6, 2))
        assert first_exceedance_slot(q, 0.5) is None
        q[4, 1] = 0.7
        assert first_exceedance_slot(q, 0.5) == 4
        q[2, 0] = 0.5  # boundary counts
        assert first_exceedance_slot(q, 0.5) == 2
        with pytest.raises(ValueError):
            first_exceedance_slot(np.zeros(6), 0.5)

    def test_tti_is_enters_and_stays(self):
        tr = KPITracker(top_k=1)
        tr.register_event("ev", "s2")
        # In at 2, flaps out at 4, re-enters at 6 and stays.
        tr.record_identification("ev", 2, ["s2", "s0"])
        tr.record_identification("ev", 4, ["s1", "s2"])
        tr.record_identification("ev", 6, ["s2", "s1"])
        tr.record_identification("ev", 8, ["s2", "s1"])
        (kpi,) = tr.finalize()
        assert kpi.identified and kpi.map_correct
        assert kpi.tti_slots == 6  # the transient at 2 does not count
        assert kpi.final_horizon == 8 and kpi.n_horizons == 4

    def test_never_identified(self):
        tr = KPITracker(top_k=1)
        tr.register_event("ev", "s9")
        tr.record_identification("ev", 2, ["s0"])
        tr.record_identification("ev", 4, ["s1"])
        (kpi,) = tr.finalize()
        assert not kpi.identified and not kpi.map_correct
        assert kpi.tti_slots is None

    def test_top_k_window_vs_map(self):
        tr = KPITracker(top_k=3)
        tr.register_event("ev", "s2")
        tr.record_identification("ev", 5, ["s0", "s1", "s2"])
        (kpi,) = tr.finalize()
        assert kpi.identified and not kpi.map_correct
        assert kpi.tti_slots == 5

    def test_lead_time_and_alerts(self):
        tr = KPITracker(top_k=1, warning_level=3)
        tr.register_event("a", "s0", truth_crossing_slot=7)
        tr.record_alert("a", 2, 1)  # advisory: does not fire the warning
        tr.record_alert("a", 4, 3)
        tr.record_alert("a", 6, 3)
        tr.register_event("b", "s1", truth_crossing_slot=3)
        tr.record_alert("b", 5, 3)  # fired after the crossing: negative lead
        tr.register_event("c", "s2")  # truth never crosses
        tr.record_alert("c", 2, 3)
        kpis = {k.event_id: k for k in tr.finalize()}
        assert kpis["a"].alert_horizon == 4 and kpis["a"].lead_slots == 3
        assert kpis["b"].lead_slots == -2
        assert kpis["c"].alert_horizon == 2 and kpis["c"].lead_slots is None

    def test_coverage_mean_and_degradation(self):
        tr = KPITracker()
        tr.register_event("ev", "s0")
        tr.record_coverage("ev", 2, 1.0)
        tr.record_coverage("ev", 4, 0.5)
        tr.record_degradation("ev", 2)
        tr.record_degradation("ev", 0)  # no-op
        (kpi,) = tr.finalize()
        assert kpi.coverage == pytest.approx(0.75)
        assert kpi.degraded_requests == 2

    def test_registration_errors(self):
        tr = KPITracker()
        tr.register_event("ev", "s0")
        with pytest.raises(ValueError):
            tr.register_event("ev", "s0")
        with pytest.raises(KeyError):
            tr.record_identification("ghost", 2, ["s0"])
        with pytest.raises(ValueError):
            KPITracker(top_k=0)

    def test_summary_and_json_round_trip(self):
        tr = KPITracker(top_k=2)
        tr.register_event("a", "s0", truth_crossing_slot=6)
        tr.record_identification("a", 4, ["s0", "s1"])
        tr.record_alert("a", 4, 3)
        tr.record_coverage("a", 4, 0.9)
        tr.register_event("b", "s5")
        tr.record_identification("b", 4, ["s1", "s2"])
        s = tr.summary()
        assert s["n_events"] == 2 and s["n_identified"] == 1
        assert s["identification_rate"] == pytest.approx(0.5)
        assert s["n_map_correct"] == 1
        assert s["mean_tti_slots"] == pytest.approx(4.0)
        assert s["mean_lead_slots"] == pytest.approx(2.0)
        # The whole payload must be JSON-native (the bench gate relies
        # on byte-identical serialization of same-seed runs).
        blob = json.dumps(
            {"summary": s, "events": [k.to_dict() for k in tr.finalize()]},
            sort_keys=True,
        )
        assert json.loads(blob)["summary"]["n_events"] == 2


# ----------------------------------------------------------------------
# Event scripts and corruption
# ----------------------------------------------------------------------
class _FakeBank:
    def __init__(self, n):
        self._n = n

    def __len__(self):
        return self._n

    def ids(self):
        return [f"s{j}" for j in range(self._n)]


class TestEventScript:
    def test_generation_is_deterministic_and_diverse(self):
        bank = _FakeBank(16)
        a = EventScript.generate(bank, nt=10, nd=8, n_events=8, seed=3,
                                 n_workers=2, n_kills=2)
        b = EventScript.generate(bank, nt=10, nd=8, n_events=8, seed=3,
                                 n_workers=2, n_kills=2)
        assert a == b
        # Without replacement while the bank lasts.
        assert len({ev.scenario_index for ev in a.events}) == 8
        assert len(a.kills) == 2 and len(a.respawns) >= 1
        for tick, wid in a.kills:
            assert tick >= 1 and 0 <= wid < 2
        c = EventScript.generate(bank, nt=10, nd=8, n_events=8, seed=4,
                                 n_workers=2, n_kills=2)
        assert c != a  # the seed is the identity

    def test_generation_wraps_when_bank_is_small(self):
        script = EventScript.generate(_FakeBank(3), nt=10, nd=8, n_events=7,
                                      seed=0)
        assert len(script.events) == 7
        assert {ev.scenario_index for ev in script.events} == {0, 1, 2}

    def test_corrupt_stream_dropout_and_burst(self):
        rng = np.random.default_rng(0)
        d = rng.normal(size=(10, 8))
        ev = SyntheticEvent(
            event_id="ev", scenario_index=0, scenario_id="s0", start_tick=0,
            dropout_sensors=(1, 4), dropout_t0=2, dropout_t1=5,
            burst_amplitude=0.5, burst_t0=6, burst_t1=9, corruption_seed=42,
        )
        got = corrupt_stream(d, ev)
        assert got is not d  # a copy; the base stream is untouched
        assert np.all(got[2:5, [1, 4]] == 0.0)
        assert np.array_equal(got[:2], d[:2])  # outside both windows
        assert not np.array_equal(got[6:9], d[6:9])  # burst added
        # Deterministic in the event record alone.
        assert np.array_equal(got, corrupt_stream(d, ev))
        # A quiet event passes through unchanged.
        calm = SyntheticEvent(
            event_id="q", scenario_index=0, scenario_id="s0", start_tick=0
        )
        assert np.array_equal(corrupt_stream(d, calm), d)


# ----------------------------------------------------------------------
# End-to-end replays over a live fabric
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def orch_setup():
    # Small shard blocks so the bank spans both workers and a scripted
    # kill is guaranteed to hit a shard-bearing worker.
    import repro.serve.sketch as sketch_mod

    old_block = sketch_mod.COL_BLOCK
    sketch_mod.COL_BLOCK = 8
    twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=10, n_sensors=8, n_qoi=3))
    twin.setup()
    twin.phase1()
    c = twin.config
    bank = ScenarioBank(twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=11)
    bank.generate(12)
    _, noise, _ = bank.observation_batch(twin.F, noise_relative=0.01)
    server = BatchedPhase4Server(twin.phase23(noise))
    script = EventScript.generate(
        bank, nt=server.nt, nd=server.nd, n_events=4, seed=5,
        n_workers=2, n_kills=1,
    )
    yield server, bank, script
    sketch_mod.COL_BLOCK = old_block


def _replay(server, bank, script, **cfg_kw):
    with server.fabric(
        [bank], n_workers=2, screen_min_scenarios=1, screen_top=4
    ) as fab:
        orch = TwinOrchestrator(
            fab, bank, script, OrchestratorConfig(**cfg_kw),
            clock=ManualClock(),
        )
        return orch.run()


class TestTwinOrchestrator:
    def test_chaos_replay_identifies_every_event(self, orch_setup):
        server, bank, script = orch_setup
        res = _replay(server, bank, script)
        assert res.all_identified
        assert len(res.events) == len(script.events)
        assert res.kills_applied == len(script.kills)
        assert res.respawns_applied >= 1
        assert res.summary["n_events"] == len(script.events)
        # The kill really degraded some requests, and KPIs still scored.
        assert any(k.degraded_requests > 0 for k in res.events)
        assert all(k.n_horizons > 0 for k in res.events)
        assert all(k.coverage is not None for k in res.events)
        # Injected ManualClock: no wall time elapsed on the virtual axis.
        assert res.wall_s == 0.0

    def test_same_seed_runs_are_byte_identical(self, orch_setup):
        server, bank, script = orch_setup
        a = _replay(server, bank, script)
        b = _replay(server, bank, script)
        assert json.dumps(a.kpi_payload(), sort_keys=True) == json.dumps(
            b.kpi_payload(), sort_keys=True
        )

    def test_queue_and_direct_modes_agree(self, orch_setup):
        server, bank, script = orch_setup
        q = _replay(server, bank, script, use_queue=True)
        d = _replay(server, bank, script, use_queue=False)
        assert json.dumps(q.kpi_payload(), sort_keys=True) == json.dumps(
            d.kpi_payload(), sort_keys=True
        )

    def test_threshold_overrides_and_validation(self, orch_setup):
        server, bank, script = orch_setup
        res = _replay(server, bank, script, warning=1e9)
        # An impossible warning threshold: no alert ever fires, and the
        # tracker says so rather than crashing.
        assert res.summary["n_alerts_fired"] == 0
        assert all(k.alert_horizon is None for k in res.events)
        assert res.thresholds["warning"] == 1e9

        with server.fabric([bank], n_workers=0, screen_min_scenarios=1) as fab:
            with pytest.raises(ValueError, match="events"):
                TwinOrchestrator(fab, bank, EventScript(events=[]))
            with pytest.raises(ValueError, match="tick_stride"):
                TwinOrchestrator(
                    fab, bank, script, OrchestratorConfig(tick_stride=0)
                )

    def test_kpi_payload_excludes_wall_time(self, orch_setup):
        server, bank, script = orch_setup
        res = _replay(server, bank, script)
        blob = json.dumps(res.kpi_payload())
        assert "wall" not in blob
        assert "t_total" not in blob
