"""Operator archive: save/load roundtrips and rebuilt online solves."""

import numpy as np
import pytest

from repro.twin.archive import (
    load_twin_archive,
    rebuild_inversion,
    save_twin_archive,
)
from repro.twin.cascadia import CascadiaTwin
from repro.twin.config import TwinConfig


@pytest.fixture(scope="module")
def twin_archive(tmp_path_factory):
    cfg = TwinConfig.demo_2d(n_slots=8, n_sensors=6)
    twin = CascadiaTwin(cfg)
    res = twin.run_end_to_end()
    path = tmp_path_factory.mktemp("archive") / "twin.npz"
    saved = save_twin_archive(path, twin.inversion, config=cfg)
    return twin, res, saved


class TestRoundtrip:
    def test_file_written(self, twin_archive):
        _, _, path = twin_archive
        assert path.exists() and path.stat().st_size > 0

    def test_kernels_restored(self, twin_archive):
        twin, _, path = twin_archive
        arch = load_twin_archive(path)
        np.testing.assert_array_equal(arch["F"].kernel, twin.F.kernel)
        np.testing.assert_array_equal(arch["Fq"].kernel, twin.Fq.kernel)

    def test_config_restored(self, twin_archive):
        twin, _, path = twin_archive
        arch = load_twin_archive(path)
        assert arch["config"] == twin.config

    def test_prior_restored_functionally(self, twin_archive, rng):
        twin, _, path = twin_archive
        arch = load_twin_archive(path)
        m = rng.standard_normal((twin.config.n_slots, twin.operator.n_parameters))
        np.testing.assert_allclose(
            arch["prior"].apply(m), twin.prior.apply(m), atol=1e-10
        )

    def test_online_solve_from_archive(self, twin_archive):
        twin, res, path = twin_archive
        inv2 = rebuild_inversion(load_twin_archive(path))
        m2 = inv2.infer(res.d_obs)
        np.testing.assert_allclose(m2, res.m_map, atol=1e-7 * np.abs(res.m_map).max())
        fc2 = inv2.predict(res.d_obs)
        np.testing.assert_allclose(fc2.mean, res.forecast.mean, atol=1e-7)

    def test_uncompressed_and_mmap(self, twin_archive, tmp_path):
        twin, res, _ = twin_archive
        p = tmp_path / "twin_raw.npz"
        save_twin_archive(p, twin.inversion, config=twin.config, compressed=False)
        arch = load_twin_archive(p, mmap=True)
        inv2 = rebuild_inversion(arch)
        m2 = inv2.infer(res.d_obs)
        np.testing.assert_allclose(m2, res.m_map, atol=1e-7 * np.abs(res.m_map).max())

    def test_requires_phase2(self, twin_archive, tmp_path):
        from repro.inference.bayes import ToeplitzBayesianInversion

        twin, _, _ = twin_archive
        fresh = ToeplitzBayesianInversion(
            twin.F, twin.prior, twin.inversion.noise, Fq=twin.Fq
        )
        with pytest.raises(RuntimeError):
            save_twin_archive(tmp_path / "x.npz", fresh)
