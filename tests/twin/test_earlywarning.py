"""Early warning: alerts, exceedance logic, streaming partial-data solves."""

import numpy as np
import pytest

from repro.inference.forecast import QoIForecast
from repro.twin.cascadia import CascadiaTwin
from repro.twin.config import TwinConfig
from repro.twin.earlywarning import (
    AlertLevel,
    StreamingInverter,
    decide_alert,
)


@pytest.fixture(scope="module")
def twin_and_result():
    twin = CascadiaTwin(TwinConfig.demo_2d())
    res = twin.run_end_to_end()
    return twin, res


class TestAlerts:
    def test_levels_ordered(self):
        assert AlertLevel.NONE < AlertLevel.ADVISORY < AlertLevel.WATCH < AlertLevel.WARNING

    def test_strong_signal_triggers_warning(self, twin_and_result):
        _, res = twin_and_result
        dec = decide_alert(res.forecast, advisory=1e-4, watch=5e-4, warning=1e-3)
        assert dec.max_level() == AlertLevel.WARNING

    def test_huge_thresholds_give_no_alert(self, twin_and_result):
        _, res = twin_and_result
        dec = decide_alert(res.forecast, advisory=1e3, watch=2e3, warning=3e3)
        assert dec.max_level() == AlertLevel.NONE

    def test_levels_monotone_in_threshold(self, twin_and_result):
        _, res = twin_and_result
        low = decide_alert(res.forecast, 1e-4, 5e-4, 1e-3)
        high = decide_alert(res.forecast, 1e-2, 5e-2, 1e-1)
        assert np.all(low.levels >= high.levels)

    def test_summary_renders(self, twin_and_result):
        _, res = twin_and_result
        dec = decide_alert(res.forecast, 0.001, 0.005, 0.02)
        txt = dec.summary()
        assert "QoI #1" in txt and "P(>" in txt

    def test_threshold_validation(self, twin_and_result):
        _, res = twin_and_result
        with pytest.raises(ValueError):
            decide_alert(res.forecast, 0.5, 0.1, 1.0)


class TestStreaming:
    def test_full_window_matches_batch(self, twin_and_result):
        twin, res = twin_and_result
        s = StreamingInverter(twin.inversion)
        nt = twin.config.n_slots
        m_full = s.infer_partial(res.d_obs, nt)
        np.testing.assert_allclose(m_full, res.m_map, atol=1e-9 * np.abs(res.m_map).max())
        fc = s.forecast_partial(res.d_obs, nt)
        np.testing.assert_allclose(fc.mean, res.forecast.mean, atol=1e-9)
        np.testing.assert_allclose(
            fc.covariance, res.forecast.covariance, atol=1e-8
        )

    def test_partial_equals_from_scratch_subproblem(self, twin_and_result):
        twin, res = twin_and_result
        s = StreamingInverter(twin.inversion)
        k = 5
        nd = twin.sensors.n
        m_k = s.infer_partial(res.d_obs, k)
        Ksub = twin.inversion.K[: k * nd, : k * nd]
        z = np.zeros((twin.config.n_slots, nd))
        z[:k] = np.linalg.solve(Ksub, res.d_obs[:k].reshape(-1)).reshape(k, nd)
        m_ref = twin.inversion.apply_Gstar(z)
        np.testing.assert_allclose(m_k, m_ref, atol=1e-9 * np.abs(m_ref).max())

    def test_uncertainty_shrinks_with_more_data(self, twin_and_result):
        twin, res = twin_and_result
        s = StreamingInverter(twin.inversion)
        stds = []
        for k in (2, 8, twin.config.n_slots):
            fc = s.forecast_partial(res.d_obs, k)
            stds.append(float(np.mean(fc.std())))
        assert stds[0] > stds[1] > stds[2]

    def test_partial_error_decreases_with_data(self, twin_and_result):
        twin, res = twin_and_result
        s = StreamingInverter(twin.inversion)
        truth = res.scenario.m
        errs = []
        for k in (3, twin.config.n_slots):
            m_k = s.infer_partial(res.d_obs, k)
            errs.append(np.linalg.norm(m_k - truth) / np.linalg.norm(truth))
        assert errs[-1] < errs[0]

    def test_warning_latency_fires_before_end(self, twin_and_result):
        twin, res = twin_and_result
        s = StreamingInverter(twin.inversion)
        fired, decisions = s.warning_latency(res.d_obs, 1e-4, 5e-4, 1e-3)
        assert fired is not None
        assert 1 <= fired < twin.config.n_slots
        assert len(decisions) == twin.config.n_slots

    def test_forecast_accepts_truncated_buffer(self, twin_and_result):
        """Seed-API compatibility: callers may hold only the first k slots."""
        twin, res = twin_and_result
        s = StreamingInverter(twin.inversion)
        k = 4
        fc_full = s.forecast_partial(res.d_obs, k)
        fc_trunc = s.forecast_partial(res.d_obs[:k], k)
        np.testing.assert_array_equal(fc_trunc.mean, fc_full.mean)
        with pytest.raises(ValueError):
            s.forecast_partial(res.d_obs[: k - 1], k)  # fewer rows than asked

    def test_k_slot_validation(self, twin_and_result):
        twin, res = twin_and_result
        s = StreamingInverter(twin.inversion)
        with pytest.raises(ValueError):
            s.infer_partial(res.d_obs, 0)
        with pytest.raises(ValueError):
            s.infer_partial(res.d_obs, twin.config.n_slots + 1)
