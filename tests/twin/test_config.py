"""Twin configuration: presets, validation, serialization."""

import pytest

from repro.twin.config import TwinConfig


def test_demo_presets_valid():
    for preset in (TwinConfig.demo_2d(), TwinConfig.demo_3d(), TwinConfig.cascadia_2d()):
        assert preset.n_slots >= 1 and preset.n_sensors >= 1


def test_overrides():
    cfg = TwinConfig.demo_2d(n_sensors=7, n_slots=9)
    assert cfg.n_sensors == 7 and cfg.n_slots == 9


def test_cascadia_preset_physical_units():
    cfg = TwinConfig.cascadia_2d()
    assert cfg.material == "standard"
    assert cfg.dt_obs == 1.0  # the paper's 1 Hz cadence
    assert cfg.length_x == 100_000.0


def test_roundtrip_dict():
    cfg = TwinConfig.demo_2d(seed=42, temporal_rho=0.3)
    back = TwinConfig.from_dict(cfg.as_dict())
    assert back == cfg


def test_validation():
    with pytest.raises(ValueError):
        TwinConfig(dim=4)
    with pytest.raises(ValueError):
        TwinConfig(bathymetry="mariana")
    with pytest.raises(ValueError):
        TwinConfig(noise_relative=-0.01)
    with pytest.raises(ValueError):
        TwinConfig(sensor_layout="spiral")
