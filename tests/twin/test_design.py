"""Greedy A-optimal sensor placement: exactness, monotonicity, dominance."""

import numpy as np
import pytest

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.noise import NoiseModel
from repro.twin import CascadiaTwin, GreedySensorPlacement, TwinConfig


@pytest.fixture(scope="module")
def placement():
    twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=8, n_sensors=4))
    twin.setup()
    twin.phase1()
    lo, hi = twin.mesh.bounding_box()
    cand = np.linspace(lo[0] + 0.3, hi[0] - 0.3, 10)[:, None]
    gp = GreedySensorPlacement(
        twin.propagator, cand, twin.Fq, twin.prior, noise_sigma=0.005
    )
    return twin, gp


class TestObjective:
    def test_empty_set_is_prior_trace(self, placement):
        _, gp = placement
        assert gp.objective([]) == pytest.approx(float(np.trace(gp._Pq)))

    def test_objective_matches_full_inversion(self, placement):
        """The subset objective equals trace(Gamma_post(q)) from a
        from-scratch inversion restricted to those sensors."""
        twin, gp = placement
        subset = [1, 4, 8]
        from repro.inference.toeplitz import BlockToeplitzOperator

        kernel_sub = np.ascontiguousarray(gp.kernel_all[:, subset, :])
        F_sub = BlockToeplitzOperator(kernel_sub)
        noise = NoiseModel(gp.noise_sigma, gp.nt, len(subset))
        inv = ToeplitzBayesianInversion(F_sub, twin.prior, noise, Fq=twin.Fq)
        inv.assemble_data_space_hessian(method="direct")
        out = inv.assemble_goal_oriented(method="direct")
        ref = float(np.trace(out["qoi_covariance"]))
        assert gp.objective(subset) == pytest.approx(ref, rel=1e-9)

    def test_monotone_in_sensors(self, placement):
        """Adding any sensor never increases the posterior trace."""
        _, gp = placement
        base = gp.objective([2, 6])
        for j in (0, 4, 9):
            assert gp.objective([2, 6, j]) <= base + 1e-12


class TestGreedy:
    def test_trace_monotone_decreasing(self, placement):
        _, gp = placement
        res = gp.select(4)
        ot = res.objective_trace
        assert all(b <= a + 1e-12 for a, b in zip(ot, ot[1:]))
        assert 0.0 < res.reduction() <= 1.0

    def test_no_duplicates_and_valid_indices(self, placement):
        _, gp = placement
        res = gp.select(5)
        assert len(set(res.selected)) == 5
        assert all(0 <= j < gp.n_candidates for j in res.selected)
        assert res.positions.shape == (5, 1)

    def test_first_pick_is_single_best(self, placement):
        _, gp = placement
        res = gp.select(1)
        singles = [gp.objective([j]) for j in range(gp.n_candidates)]
        assert res.selected[0] == int(np.argmin(singles))

    def test_beats_or_ties_regular_layout(self, placement):
        _, gp = placement
        for k in (2, 4):
            greedy, regular = gp.compare_with_regular(k)
            assert greedy <= regular + 1e-12

    def test_forced_seed(self, placement):
        _, gp = placement
        res = gp.select(3, forced=[0])
        assert res.selected[0] == 0 and len(res.selected) == 3

    def test_validation(self, placement):
        twin, gp = placement
        with pytest.raises(ValueError):
            gp.select(0)
        with pytest.raises(ValueError):
            gp.select(gp.n_candidates + 1)
        with pytest.raises(ValueError):
            GreedySensorPlacement(
                twin.propagator, gp.candidates, twin.Fq, twin.prior,
                noise_sigma=-1.0,
            )
