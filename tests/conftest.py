"""Shared fixtures: one small but complete twin problem, built once.

Session-scoped fixtures amortize the moderately expensive pieces (kernel
extraction, Phase 2/3 assembly) across the whole suite; tests that mutate
state build their own objects instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem.mesh import StructuredMesh
from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.noise import NoiseModel
from repro.inference.prior import BiLaplacianPrior, SpatioTemporalPrior
from repro.inference.toeplitz import BlockToeplitzOperator
from repro.ocean.acoustic_gravity import AcousticGravityOperator
from repro.ocean.material import SeawaterMaterial
from repro.ocean.observations import SensorArray, SurfaceQoI
from repro.ocean.propagator import SlotPropagator
from repro.rupture.scenario import margin_wide_scenario


@pytest.fixture(scope="session")
def material():
    """Nondimensional seawater (O(1) wave speeds for fast tests)."""
    return SeawaterMaterial.nondimensional()


@pytest.fixture(scope="session")
def mesh2d():
    """Small terrain-following 2D (x-z) ocean mesh."""
    x = np.linspace(0.0, 4.0, 9)
    return StructuredMesh.ocean([x], nz=2, depth=lambda xx: 0.8 + 0.1 * np.sin(2 * xx))

@pytest.fixture(scope="session")
def mesh3d():
    """Small terrain-following 3D ocean mesh."""
    x = np.linspace(0.0, 3.0, 5)
    y = np.linspace(0.0, 2.0, 4)
    return StructuredMesh.ocean(
        [x, y], nz=2, depth=lambda a, b: 0.7 + 0.05 * np.cos(a) + 0.03 * np.sin(b)
    )


@pytest.fixture(scope="session")
def op2d(mesh2d, material):
    """Assembled 2D acoustic-gravity operator, order 3."""
    return AcousticGravityOperator(mesh2d, order=3, material=material)


@pytest.fixture(scope="session")
def op3d(mesh3d, material):
    """Assembled 3D acoustic-gravity operator, order 2."""
    return AcousticGravityOperator(mesh3d, order=2, material=material)


@pytest.fixture(scope="session")
def prop2d(op2d):
    """Slot propagator over 10 slots on the 2D operator."""
    return SlotPropagator(op2d, dt_obs=0.2, n_slots=10, cfl=0.3)


@pytest.fixture(scope="session")
def sensors2d(op2d):
    """Regular 2D bottom sensor array (5 sensors)."""
    return SensorArray.regular(op2d, 5)


@pytest.fixture(scope="session")
def qoi2d(op2d):
    """Two coastal surface QoI points."""
    return SurfaceQoI.coastal(op2d, 2)


@pytest.fixture(scope="session")
def kernel2d(prop2d, sensors2d):
    """p2o kernel of the 2D problem via batched adjoint propagation."""
    return prop2d.p2o_kernel(sensors2d)


@pytest.fixture(scope="session")
def kernel2d_q(prop2d, qoi2d):
    """p2q kernel of the 2D problem."""
    return prop2d.p2o_kernel(qoi2d)


@pytest.fixture(scope="session")
def F2d(kernel2d):
    """The p2o Toeplitz operator."""
    return BlockToeplitzOperator(kernel2d)


@pytest.fixture(scope="session")
def Fq2d(kernel2d_q):
    """The p2q Toeplitz operator."""
    return BlockToeplitzOperator(kernel2d_q)


@pytest.fixture(scope="session")
def prior2d(op2d, prop2d):
    """Spatio-temporal BiLaplacian prior on the 2D bottom trace."""
    sp = BiLaplacianPrior.from_correlation(
        op2d.bottom_trace.axes, sigma=0.3, correlation_length=0.8
    )
    return SpatioTemporalPrior(sp, prop2d.n_slots)


@pytest.fixture(scope="session")
def scenario2d(op2d, prop2d):
    """A margin-wide rupture scenario on the 2D trace."""
    return margin_wide_scenario(
        op2d.bottom_trace, nt=prop2d.n_slots, dt_obs=prop2d.dt_obs,
        peak_uplift=0.4, seed=5,
    )


@pytest.fixture(scope="session")
def observed2d(F2d, scenario2d):
    """(d_clean, noise, d_obs) for the standard 2D scenario."""
    d_clean = F2d.matvec(scenario2d.m)
    noise = NoiseModel.relative(d_clean, 0.01)
    rng = np.random.default_rng(11)
    return d_clean, noise, noise.add_to(d_clean, rng)


@pytest.fixture(scope="session")
def inversion2d(F2d, Fq2d, prior2d, observed2d):
    """Fully assembled inversion (Phases 2+3 complete)."""
    _, noise, _ = observed2d
    inv = ToeplitzBayesianInversion(F2d, prior2d, noise, Fq=Fq2d)
    inv.assemble_data_space_hessian(method="direct")
    inv.assemble_goal_oriented(method="direct")
    return inv


@pytest.fixture(scope="session")
def dense_reference(F2d, prior2d, observed2d):
    """Dense Hessian / posterior reference objects for exactness tests."""
    _, noise, _ = observed2d
    Fd = F2d.dense()
    Gfull = prior2d.dense()
    Gn_inv = np.diag(1.0 / noise.flat_variance())
    H = Fd.T @ Gn_inv @ Fd + np.linalg.inv(Gfull)
    Gpost = np.linalg.inv(H)
    return {"Fd": Fd, "Gfull": Gfull, "Gn_inv": Gn_inv, "H": H, "Gpost": Gpost}


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(12345)
