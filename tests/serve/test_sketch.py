"""Certified sketch-screen layer: tightness, safety, and shard equivalence.

What must hold:

* **The brackets are certified.**  ``IdentificationSession.evidence_interval``
  always contains the exact log-evidence, ragged fleets included, with or
  without a sketch — and the sketch interval is never wider than the
  norm-only one.
* **Certified top-k == exhaustive under the sketch screen**, on ragged
  fleets, through the fabric.
* **An adversarial bank can mis-rank the sketch inner product** (the
  residual energy hides in the projection's orthogonal complement), but
  the certified bracket refuses to prune the mis-ranked scenario — the
  final ranking stays exhaustive.
* **Shard-built sketches are bitwise equal to the flat build**, like the
  bank states themselves.
* **Sharded forecast mixtures match the flat single-process path** to
  machine precision, degraded workers included.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.serve.sketch as sketch_mod
from repro.serve import (
    BatchedPhase4Server,
    ScenarioIdentifier,
    ServingFabric,
    SlotSketch,
    TcpTransport,
    pca_basis,
    start_local_shards,
)


@pytest.fixture()
def small_blocks(monkeypatch):
    """Shrink COL_BLOCK so small banks span several blocks/shards."""
    monkeypatch.setattr(sketch_mod, "COL_BLOCK", 8)


@pytest.fixture()
def server(serve_inversion):
    return BatchedPhase4Server(serve_inversion)


# ----------------------------------------------------------------------
# SlotSketch primitives
# ----------------------------------------------------------------------
def test_slot_sketch_is_orthonormal_and_seeded():
    sk = SlotSketch(nt=6, nd=8, rank=3, seed=42)
    for t in range(6):
        P = sk.slot(t)
        np.testing.assert_allclose(P @ P.T, np.eye(3), atol=1e-12)
    again = SlotSketch(nt=6, nd=8, rank=3, seed=42)
    np.testing.assert_array_equal(sk.projections, again.projections)
    other = SlotSketch(nt=6, nd=8, rank=3, seed=43)
    assert not np.array_equal(sk.projections, other.projections)
    # Distinct slots draw distinct projections.
    assert not np.array_equal(sk.slot(0), sk.slot(1))
    with pytest.raises(ValueError):
        SlotSketch(nt=6, nd=8, rank=9)
    with pytest.raises(ValueError):
        SlotSketch(nt=6, nd=8, rank=0)


def test_projection_never_grows_energy():
    sk = SlotSketch(nt=4, nd=10, rank=4, seed=1)
    rng = np.random.default_rng(0)
    W = rng.standard_normal((40, 13))
    proj, psq = sk.project_bank(W)
    full = np.einsum(
        "tds,tds->ts", W.reshape(4, 10, 13), W.reshape(4, 10, 13)
    )
    assert np.all(psq <= full + 1e-12)
    # Full rank captures everything: the sketch becomes lossless.
    full_rank = SlotSketch(nt=4, nd=10, rank=10, seed=1)
    _, psq_full = full_rank.project_bank(W)
    np.testing.assert_allclose(psq_full, full, rtol=1e-12)


def test_pca_basis_properties():
    """Per-slot orthonormality, determinism, Eckart–Young dominance."""
    nt, nd, S, rank = 5, 8, 21, 3
    rng = np.random.default_rng(2)
    W = rng.standard_normal((nt * nd, S))
    P = pca_basis(W, nt, nd, rank)
    assert P.shape == (nt * rank, nd) and P.flags["C_CONTIGUOUS"]
    for t in range(nt):
        rows = P[t * rank : (t + 1) * rank]
        np.testing.assert_allclose(rows @ rows.T, np.eye(rank), atol=1e-10)
    # Deterministic (sign canonicalization pins the eigenvector signs).
    np.testing.assert_array_equal(P, pca_basis(W, nt, nd, rank))

    # Eckart–Young: at equal rank, the PCA rows capture at least as much
    # bank energy per slot as any Gaussian draw — so the certified
    # bracket's remainder term can only shrink.
    pca = SlotSketch(nt, nd, rank, matrix=P, mode="pca")
    _, psq_pca = pca.project_bank(W)
    full = np.einsum(
        "tds,tds->ts", W.reshape(nt, nd, S), W.reshape(nt, nd, S)
    )
    for seed in (0, 1, 2):
        _, psq_g = SlotSketch(nt, nd, rank, seed=seed).project_bank(W)
        assert psq_pca.sum() >= psq_g.sum() - 1e-9
    # Full rank is lossless, like the Gaussian full-rank case.
    full_pca = SlotSketch.from_bank(W, nt, nd, nd)
    _, psq_full = full_pca.project_bank(W)
    np.testing.assert_allclose(psq_full, full, rtol=1e-10)

    # from_bank is exactly pca_basis + SlotSketch(matrix=...).
    np.testing.assert_array_equal(
        SlotSketch.from_bank(W, nt, nd, rank).projections, P
    )
    with pytest.raises(ValueError, match="pca"):
        SlotSketch(nt, nd, rank, mode="pca")  # data-dependent: needs matrix
    with pytest.raises(ValueError):
        SlotSketch(nt, nd, rank, matrix=P[:1], mode="pca")


def test_pca_projection_is_shard_invariant():
    """Projecting block-aligned column ranges separately is bitwise equal
    to the full-range projection — the invariant that lets shards hold
    arbitrary (aligned) column spans of a PCA-sketched bank."""
    nt, nd, S, rank = 4, 6, 37, 2
    rng = np.random.default_rng(8)
    W = rng.standard_normal((nt * nd, S))
    sk = SlotSketch.from_bank(W, nt, nd, rank)
    ref_proj, ref_psq = sk.project_bank(W)
    old = sketch_mod.COL_BLOCK
    try:
        sketch_mod.COL_BLOCK = 8
        whole = np.empty((nt * rank, S))
        wpsq = np.empty((nt, S))
        sk.project_bank_columns(W, whole, wpsq, 0, S)
        parts = np.empty_like(whole)
        ppsq = np.empty_like(wpsq)
        for c0, c1 in ((0, 16), (16, 24), (24, S)):  # 8-aligned shards
            sk.project_bank_columns(W, parts, ppsq, c0, c1)
        np.testing.assert_array_equal(parts, whole)
        np.testing.assert_array_equal(ppsq, wpsq)
    finally:
        sketch_mod.COL_BLOCK = old
    np.testing.assert_allclose(whole, ref_proj, rtol=0, atol=1e-12)
    np.testing.assert_allclose(wpsq, ref_psq, rtol=0, atol=1e-12)


def test_fleet_incremental_projection_matches_catchup(serve_inversion, serve_streams):
    """attach-then-advance (incremental) == advance-then-attach (catch-up)."""
    _, _, d_obs = serve_streams
    eng = serve_inversion.streaming_state()
    sk = SlotSketch(eng.nt, eng.nd, rank=4, seed=7)
    hz = [3, 8, eng.nt, 1, 6]

    inc = eng.open_fleet(d_obs[:, :, :5])
    inc.attach_sketch(sk.projections)
    inc.advance(hz)

    post = eng.open_fleet(d_obs[:, :, :5])
    post.advance(hz)
    post.attach_sketch(sk.projections)

    np.testing.assert_allclose(
        inc.slot_projections(), post.slot_projections(), rtol=0, atol=1e-13
    )
    # Direct check against the states themselves.
    W = inc.states
    for s in range(eng.nt):
        expect = sk.slot(s) @ W[s * eng.nd : (s + 1) * eng.nd]
        np.testing.assert_allclose(
            inc.slot_projections()[s * 4 : (s + 1) * 4], expect, atol=1e-12
        )
    # Norm export is consistent and zero beyond each horizon.
    psq = inc.slot_projection_norms()
    for j, k in enumerate(hz):
        assert np.all(psq[k:, j] == 0.0)
    with pytest.raises(RuntimeError):
        eng.open_fleet(d_obs[:, :, :1]).slot_projections()


# ----------------------------------------------------------------------
# Certified brackets (flat path)
# ----------------------------------------------------------------------
def test_evidence_interval_contains_exact_and_sketch_tightens(
    server, serve_bank, serve_streams
):
    _, _, d_obs = serve_streams
    nt = server.nt
    session = server.open_identification(serve_bank, d_obs[:, :, :6])
    rng = np.random.default_rng(3)
    hz = rng.integers(1, nt + 1, size=6)
    session.advance(hz)
    ev = session.log_evidence()

    lb_n, ub_n = session.evidence_interval(stride=3)
    assert np.all(lb_n <= ev + 1e-9) and np.all(ev <= ub_n + 1e-9)

    for rank in (2, server.nd):
        lb_s, ub_s = session.evidence_interval(stride=3, sketch_rank=rank)
        assert np.all(lb_s <= ev + 1e-9) and np.all(ev <= ub_s + 1e-9)
        width_s = ub_s - lb_s
        width_n = ub_n - lb_n
        assert np.all(width_s <= width_n + 1e-9)
    # Full-rank sketch: the bracket collapses onto the exact evidence.
    np.testing.assert_allclose(lb_s, ev, rtol=0, atol=1e-8)
    np.testing.assert_allclose(ub_s, ev, rtol=0, atol=1e-8)


def test_bank_sketch_is_memoized(server, serve_bank):
    ident = server.scenario_identifier(serve_bank)
    a = ident.sketch(3, seed=5)
    assert ident.sketch(3, seed=5) is a
    assert ident.sketch(3, seed=6) is not a
    assert ident.state_nbytes() > a[1].nbytes  # sketches counted


# ----------------------------------------------------------------------
# Fabric: certified sketch screen == exhaustive, ragged fleets
# ----------------------------------------------------------------------
def test_certified_sketch_screen_matches_exhaustive_ragged(
    server, serve_bank, serve_streams, small_blocks
):
    _, _, d_obs = serve_streams
    nt = server.nt
    rng = np.random.default_rng(17)
    hz = rng.integers(2, nt + 1, size=8)
    ref = server.identify_batch(serve_bank, d_obs[:, :, :8], k_slots=hz)
    with server.fabric(
        [serve_bank], n_workers=2, sketch_rank=4, screen_stride=2,
        screen_top=3, screen_min_scenarios=1,
    ) as fab:
        got = fab.identify(d_obs[:, :, :8], hz)
        assert fab.last_report.screened
        assert fab.last_report.sketch_rank == 4
        for j in range(8):
            top_ref = [s for s, _ in ref.top_k(3)[j]]
            top_got = [s for s, _ in got.top_k(3)[j]]
            assert top_got == top_ref
        # Single-stream requests too (sharp candidate sets).
        for j in range(4):
            one = fab.identify(d_obs[:, :, j : j + 1], k_slots=int(hz[j]))
            assert [s for s, _ in one.top_k(3)[0]] == [
                s for s, _ in ref.top_k(3)[j]
            ]


def test_sketch_prunes_more_than_norm_screen(server, serve_bank, serve_streams):
    """Same fabric, same request: sketch brackets must not prune less."""
    d_clean, _, _ = serve_streams
    nt = server.nt
    with server.fabric(
        [serve_bank], n_workers=0, sketch_rank=6, screen_stride=2,
        screen_top=1, screen_min_scenarios=1,
    ) as fab:
        fab.identify(d_clean[:, :, :1], k_slots=nt, sketch=False)
        norm_candidates = fab.last_report.n_candidates
        assert fab.last_report.sketch_rank == 0
        fab.identify(d_clean[:, :, :1], k_slots=nt)
        sketch_candidates = fab.last_report.n_candidates
        assert fab.last_report.sketch_rank == 6
        assert sketch_candidates <= norm_candidates
        assert fab.last_report.pruned_fraction > 0.0


def test_sharded_bank_sketch_bitmatch(server, serve_bank, small_blocks):
    """Worker-built shard sketches equal the flat identifier's, bitwise."""
    ident = server.scenario_identifier(serve_bank)
    _, proj, psq = ident.sketch(3, seed=9)
    with server.fabric(
        [serve_bank], n_workers=2, sketch_rank=3, sketch_seed=9
    ) as fab:
        v = fab._resolve_bank(serve_bank).views
        assert np.array_equal(v["pmu"], proj)
        assert np.array_equal(v["slot_psq"], psq)


def test_pca_shard_builds_bitwise_across_layouts_and_transports(
    server, serve_inversion, serve_bank, small_blocks
):
    """PCA shard builds are bitwise layout- and transport-independent.

    The basis is computed by the parent from the assembled whitened bank
    and the projection chunks on absolute COL_BLOCK boundaries, so
    sharded shared-memory workers, the flat in-process path, and TCP
    shard servers must all publish identical ``pmu``/``slot_psq``."""
    ident = server.scenario_identifier(serve_bank)
    _, proj, psq = ident.sketch(3, mode="pca")
    builds = {}
    for n_workers in (2, 0):
        with server.fabric(
            [serve_bank], n_workers=n_workers, sketch_rank=3,
            sketch_mode="pca",
        ) as fab:
            v = fab._resolve_bank(serve_bank).views
            builds[n_workers] = (v["pmu"].copy(), v["slot_psq"].copy())
    servers = start_local_shards(2)
    try:
        with ServingFabric(
            serve_inversion, [serve_bank],
            transport=TcpTransport([s.address for s in servers]),
            sketch_rank=3, sketch_mode="pca",
        ) as fab:
            v = fab._resolve_bank(serve_bank).views
            builds["tcp"] = (v["pmu"].copy(), v["slot_psq"].copy())
    finally:
        for s in servers:
            s.stop()
    for layout, (pmu, slot_psq) in builds.items():
        np.testing.assert_array_equal(pmu, proj, err_msg=str(layout))
        np.testing.assert_array_equal(slot_psq, psq, err_msg=str(layout))


def test_evidence_interval_pca_tightens_over_gaussian(
    server, serve_bank, serve_streams
):
    """At equal rank the bank-PCA bracket is tighter than the Gaussian
    one on average (Eckart--Young: the basis captures the most bank
    energy any rank-r projection can), and both still contain exact."""
    _, _, d_obs = serve_streams
    nt = server.nt
    session = server.open_identification(serve_bank, d_obs[:, :, :6])
    rng = np.random.default_rng(3)
    session.advance(rng.integers(1, nt + 1, size=6))
    ev = session.log_evidence()
    rank = 3
    lb_g, ub_g = session.evidence_interval(stride=3, sketch_rank=rank)
    lb_p, ub_p = session.evidence_interval(
        stride=3, sketch_rank=rank, sketch_mode="pca"
    )
    for lb, ub in ((lb_g, ub_g), (lb_p, ub_p)):
        assert np.all(lb <= ev + 1e-9) and np.all(ev <= ub + 1e-9)
    assert (ub_p - lb_p).mean() < (ub_g - lb_g).mean()


# ----------------------------------------------------------------------
# Adversarial: sketch inner product mis-ranks, certified bracket refuses
# ----------------------------------------------------------------------
def test_certified_refuses_to_prune_sketch_misranking(server):
    """Residual energy hidden in the sketch's orthogonal complement.

    The bank is built in whitened space so that, on every *omitted* slot,
    scenario ``decoy``'s residual lies entirely inside the sketch's
    orthogonal complement (the projected residual — the sketch inner
    product's view — is exactly zero, so by sketch-projection alone
    ``decoy`` looks like a perfect match and outranks the true scenario),
    while ``truth`` carries a small visible residual.  The certified
    bracket cannot be fooled: the orthogonal-remainder norms keep
    ``decoy``'s interval wide, it survives the screen, and stage 2's
    exact evidence restores the exhaustive order.
    """
    inv = server.inv
    nt, nd = server.nt, server.nd
    L = np.asarray(inv.cholesky_lower)
    rank = 2
    seed = 31
    sk = SlotSketch(nt, nd, rank, seed=seed)

    rng = np.random.default_rng(5)
    w_d = np.zeros(nt * nd)
    w_d[:nd] = 10.0 * rng.standard_normal(nd)  # slot 0 dominates -> screened
    for s in range(1, nt):
        w_d[s * nd : (s + 1) * nd] = rng.standard_normal(nd)

    def perp_component(s, v):
        P = sk.slot(s)
        return v - P.T @ (P @ v)

    # decoy: matches the data exactly on the screened slot and in every
    # sketch direction; its (large) residual is invisible to projections.
    w_decoy = w_d.copy()
    for s in range(1, nt):
        v = rng.standard_normal(nd)
        w_decoy[s * nd : (s + 1) * nd] += 3.0 * perp_component(s, v)
    # truth: tiny fully-visible residual everywhere.
    w_truth = w_d + 0.05 * rng.standard_normal(nt * nd)

    W = np.stack([w_truth, w_decoy], axis=-1)
    records = (L @ W).reshape(nt, nd, 2)
    d_stream = (L @ w_d).reshape(nt, nd)

    ident = ScenarioIdentifier(inv.streaming_state(), records)
    sess = ident.open(d_stream[:, :, None])
    sess.advance(nt)
    exhaustive = [s for s, _ in sess.posterior().top_k(2)[0]]
    assert exhaustive == ["s0", "s1"]  # truth first: the decoy's residual is real

    # The sketch's own view genuinely mis-ranks: decoy's projected
    # residual is ~zero while truth's is not.
    _, proj, psq = ident.sketch(rank, seed=seed)
    fleet = inv.streaming_state().open_fleet(d_stream[:, :, None])
    fleet.attach_sketch(sk.projections)
    fleet.advance(nt)
    pd = fleet.slot_projections()[:, 0]
    proj_resid = ((proj - pd[:, None]) ** 2).sum(axis=0)
    assert proj_resid[1] < proj_resid[0]  # decoy looks *better* to the sketch

    with server.fabric(
        [records], n_workers=0, sketch_rank=rank, sketch_seed=seed,
        screen_stride=nt, screen_top=1, screen_min_scenarios=1,
    ) as fab:
        cert = fab.identify(d_stream, nt, certified=True)
        assert fab.last_report.screened
        assert [s for s, _ in cert.top_k(2)[0]] == exhaustive
        np.testing.assert_allclose(
            cert.log_evidence[0], sess.log_evidence()[0], rtol=0, atol=1e-9
        )

    # Bank-PCA mode on the same adversarial bank: the data-dependent
    # basis changes what the sketch sees, never what the certificate
    # guarantees — certified top-k still equals exhaustive.
    with server.fabric(
        [records], n_workers=0, sketch_rank=rank, sketch_mode="pca",
        screen_stride=nt, screen_top=1, screen_min_scenarios=1,
    ) as fab:
        cert = fab.identify(d_stream, nt, certified=True)
        assert fab.last_report.screened
        assert fab.last_report.sketch_mode == "pca"
        assert [s for s, _ in cert.top_k(2)[0]] == exhaustive


# ----------------------------------------------------------------------
# Sharded forecast mixtures
# ----------------------------------------------------------------------
def test_sharded_forecast_mixture_matches_flat(
    server, serve_bank, serve_streams, small_blocks
):
    _, _, d_obs = serve_streams
    nt = server.nt
    hz = [3, nt, 7, 1, 9, 5]
    session = server.open_identification(serve_bank, d_obs[:, :, :6])
    session.advance(hz)
    flat = session.forecast_mixture()
    with server.fabric([serve_bank], n_workers=2) as fab:
        got = fab.forecast_mixture(d_obs[:, :, :6], hz)
        assert len(got) == 6
        for f, g in zip(flat, got):
            np.testing.assert_allclose(g.mean, f.mean, rtol=0, atol=1e-11)
            scale = max(float(np.abs(f.covariance).max()), 1e-30)
            assert np.abs(g.covariance - f.covariance).max() / scale < 1e-10
            np.testing.assert_array_equal(g.times, f.times)


def test_mixture_degrades_gracefully_and_chunks(
    server, serve_bank, serve_streams, small_blocks
):
    _, _, d_obs = serve_streams
    session = server.open_identification(serve_bank, d_obs[:, :, :6])
    session.advance(4)
    flat = session.forecast_mixture()
    with server.fabric(
        [serve_bank], n_workers=2, max_batch=4  # 6 streams -> 2 chunks
    ) as fab:
        fab._workers[0].process.kill()
        fab._workers[0].process.join()
        got = fab.forecast_mixture(d_obs[:, :, :6], 4)
        for f, g in zip(flat, got):
            np.testing.assert_allclose(g.mean, f.mean, rtol=0, atol=1e-11)
            scale = max(float(np.abs(f.covariance).max()), 1e-30)
            assert np.abs(g.covariance - f.covariance).max() / scale < 1e-10
        # The transient mixture scratch was released.
        assert fab.budget.nbytes_of(f"{fab.budget_prefix}:mixture") == 0


def test_mixture_requires_qoi_capable_bank(server, serve_bank, serve_streams):
    _, _, d_obs = serve_streams
    records = serve_bank.clean_records(server.inv.F)
    with server.fabric([records], n_workers=0) as fab:
        with pytest.raises(RuntimeError, match="QoI"):
            fab.forecast_mixture(d_obs[:, :, :2], 4)


# ----------------------------------------------------------------------
# Property sweep: certified guarantees under orchestrator-style corruption
# ----------------------------------------------------------------------
def test_certified_guarantees_under_corruption_sweep(
    server, serve_bank, serve_streams, small_blocks
):
    """Seeded hypothesis-style sweep over dropout masks and noise bursts.

    The certificate's promise is data-independent: whatever the stream
    looks like — sensors zeroed over random windows, bursts up to full
    signal scale — (a) the certified evidence interval must contain the
    exact evidence and (b) the certified screen's top-k must equal the
    exhaustive ranking.  Identification *accuracy* is allowed to suffer
    under corruption (that is physics); certification is not.
    """
    from repro.twin.orchestrator import SyntheticEvent, corrupt_stream

    _, _, d_obs = serve_streams
    nt, nd = server.nt, server.nd
    rng = np.random.default_rng(20250808)
    with server.fabric(
        [serve_bank], n_workers=2, sketch_rank=4, screen_stride=2,
        screen_top=3, screen_min_scenarios=1,
    ) as fab:
        screened_trials = 0
        for trial in range(12):
            j = int(rng.integers(0, d_obs.shape[2]))
            n_drop = int(rng.integers(0, nd // 2 + 1))
            t0 = int(rng.integers(0, nt))
            b0 = int(rng.integers(0, nt))
            event = SyntheticEvent(
                event_id=f"trial{trial}", scenario_index=j,
                scenario_id="n/a", start_tick=0,
                dropout_sensors=tuple(
                    int(s) for s in sorted(rng.permutation(nd)[:n_drop])
                ),
                dropout_t0=t0,
                dropout_t1=int(rng.integers(t0, nt + 1)),
                burst_amplitude=float(rng.uniform(0.0, 2.0)),
                burst_t0=b0,
                burst_t1=int(rng.integers(b0, nt + 1)),
                corruption_seed=int(rng.integers(1 << 62)),
            )
            d = corrupt_stream(d_obs[:, :, j], event)
            k = int(rng.integers(2, nt + 1))

            # (a) Certified interval brackets the exact evidence.
            session = server.open_identification(serve_bank, d[:, :, None])
            session.advance(k)
            ev = session.log_evidence()
            lb, ub = session.evidence_interval(stride=2, sketch_rank=4)
            assert np.all(lb <= ev + 1e-9) and np.all(ev <= ub + 1e-9)

            # (b) Certified screen == exhaustive ranking, same stream.
            got = fab.identify(d[:, :, None], k_slots=k)
            if fab.last_report.screened:
                screened_trials += 1
            ref = fab.identify(d[:, :, None], k_slots=k, screen=False)
            assert [s for s, _ in got.top_k(3)[0]] == [
                s for s, _ in ref.top_k(3)[0]
            ]
        # The sweep must actually exercise the screen, not fall through.
        assert screened_trials == 12
