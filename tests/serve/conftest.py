"""Serving-layer fixtures: one small twin with completed offline phases.

The serving tests exercise many streams against one geometry, so the
expensive pieces (kernel extraction, Phase 2-3 assembly, bank generation)
are built once per session and shared read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import ScenarioBank
from repro.twin import CascadiaTwin, TwinConfig


@pytest.fixture(scope="session")
def serve_twin():
    """A small 2D twin with Phase 1 complete."""
    twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=12, n_sensors=10, n_qoi=3))
    twin.setup()
    twin.phase1()
    return twin


@pytest.fixture(scope="session")
def serve_bank(serve_twin):
    """A 24-entry scenario bank on the twin's trace grid."""
    c = serve_twin.config
    bank = ScenarioBank(
        serve_twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=11
    )
    bank.generate(24)
    return bank


@pytest.fixture(scope="session")
def serve_streams(serve_twin, serve_bank):
    """``(d_clean, noise, d_obs)`` for the whole bank."""
    return serve_bank.observation_batch(serve_twin.F, noise_relative=0.01)


@pytest.fixture(scope="session")
def serve_inversion(serve_twin, serve_streams):
    """Phases 2-3 under the same fleet noise model the streams were drawn with."""
    _, noise, _ = serve_streams
    return serve_twin.phase23(noise)
