"""Wire-codec contract: round-trips, versioning, scratch sizing.

The shard protocol (:mod:`repro.serve.protocol`) is the layer every
transport shares — a framing bug here corrupts certified bounds on both
shared memory and TCP, so the codec is pinned independently of any
transport: exact round-trips for every message type (arrays included),
loud failures on version skew and unknown types, and the scratch-block
size formula the docs' wire-payload table is computed from.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    Ack,
    AdoptShard,
    BuildShard,
    DetachBank,
    ErrorReply,
    ExactStage,
    Hello,
    KillChannel,
    MixtureStage,
    ProtocolError,
    ScreenStage,
    Stop,
    decode_message,
    encode_message,
    pack_scratch,
    scratch_nbytes,
)

ALL_SCALAR_MESSAGES = [
    Hello(nd=10, nt=12, screen_rtol=1e-7, sketch_rank=4),
    BuildShard(key="bank0", c0=0, c1=16),
    AdoptShard(key="bank0", c0=16, c1=24),
    DetachBank(key="bank0"),
    ScreenStage(
        req_id=7, key="bank0", n_streams=3, slots=(1, 5, 9),
        use_sketch=True, c0=0, c1=16,
    ),
    MixtureStage(req_id=9, key="bank0", n_streams=2, shard_idx=1, c0=8, c1=16),
    KillChannel(),
    Stop(),
    Ack(req_id=42),
    ErrorReply(req_id=3, message="ValueError('boom')"),
]


@pytest.mark.parametrize(
    "msg", ALL_SCALAR_MESSAGES, ids=lambda m: m.TYPE + str(id(m) % 7)
)
def test_scalar_message_roundtrip(msg):
    decoded, arrays = decode_message(encode_message(msg))
    assert decoded == msg
    assert arrays == {}


def test_tuple_fields_survive_json():
    """JSON turns tuples into lists; decode must restore tuples (the
    screen-slot tuple is hashed/compared verbatim downstream)."""
    msg = ScreenStage(req_id=1, key="b", n_streams=2, slots=(2, 4, 6))
    decoded, _ = decode_message(encode_message(msg))
    assert decoded.slots == (2, 4, 6)
    assert isinstance(decoded.slots, tuple)
    assert decoded == msg


def test_exact_stage_cols_array_roundtrip():
    """Array-typed message fields ride the data plane and come back
    writable and bit-equal."""
    cols = np.array([3, 5, 8, 13], dtype=np.int64)
    msg = ExactStage(req_id=5, key="b", n_streams=2, cols=cols, c0=0, c1=16)
    decoded, arrays = decode_message(encode_message(msg))
    assert arrays == {}
    np.testing.assert_array_equal(decoded.cols, cols)
    assert decoded.cols.dtype == np.int64
    assert decoded.cols.flags.writeable
    # cols=None (whole-shard exact) round-trips as None, not an empty array
    none_msg = ExactStage(req_id=6, key="b", n_streams=2, cols=None)
    decoded2, _ = decode_message(encode_message(none_msg))
    assert decoded2.cols is None


def test_payload_arrays_roundtrip_bitwise():
    rng = np.random.default_rng(3)
    arrays = {
        "wd": rng.standard_normal((12, 3)),
        "hz": np.array([4, 5, 6], dtype=np.int64),
        "flags": np.array([[True, False]]),
    }
    msg = Ack(req_id=("attach", "bank0"))
    decoded, out = decode_message(encode_message(msg, arrays))
    assert decoded.req_id == ("attach", "bank0")
    assert set(out) == set(arrays)
    for k in arrays:
        np.testing.assert_array_equal(out[k], arrays[k])
        assert out[k].dtype == arrays[k].dtype
        assert out[k].flags.writeable


def test_bad_magic_rejected():
    frame = encode_message(Stop())
    with pytest.raises(ProtocolError, match="magic"):
        decode_message(b"XXXX" + frame[4:])


def test_version_mismatch_rejected():
    """A peer speaking a different protocol version must fail at the
    first frame — patch the version inside an otherwise-valid header."""
    frame = encode_message(Hello(nd=2, nt=3))
    (hlen,) = struct.unpack(">I", frame[4:8])
    header = json.loads(frame[8 : 8 + hlen])
    header["v"] = protocol.PROTOCOL_VERSION + 1
    patched = json.dumps(header, separators=(",", ":")).encode()
    frame2 = frame[:4] + struct.pack(">I", len(patched)) + patched + frame[8 + hlen :]
    with pytest.raises(ProtocolError, match="version mismatch"):
        decode_message(frame2)


def test_unknown_type_rejected():
    frame = encode_message(Stop())
    (hlen,) = struct.unpack(">I", frame[4:8])
    header = json.loads(frame[8 : 8 + hlen])
    header["type"] = "warp"
    patched = json.dumps(header, separators=(",", ":")).encode()
    frame2 = frame[:4] + struct.pack(">I", len(patched)) + patched
    with pytest.raises(ProtocolError, match="unknown message type"):
        decode_message(frame2)


def test_pack_scratch_contents_and_size():
    """pack_scratch ships exactly the per-request block, and
    scratch_nbytes prices it (the SERVING.md payload table's source)."""
    nt, nd, jmax, J, r = 6, 4, 8, 3, 2
    static = {
        "wd": np.arange(nt * nd * jmax, dtype=float).reshape(nt * nd, jmax),
        "wd_slot": np.ones((nt, jmax)),
        "wsq": np.ones(jmax),
        "hz": np.arange(jmax, dtype=np.int64),
        "wd_p": np.ones((nt * r, jmax)),
        "wd_psq": np.ones((nt, jmax)),
    }
    packed = pack_scratch(static, J, use_sketch=True)
    assert set(packed) == {"wd", "wd_slot", "wsq", "hz", "wd_p", "wd_psq"}
    assert packed["wd"].shape == (nt * nd, J)
    total = sum(np.ascontiguousarray(a).nbytes for a in packed.values())
    assert total == scratch_nbytes(nt, nd, J, sketch_rank=r)
    # Norm-only screen (or no sketch arrays at all): sketch block omitted.
    packed_plain = pack_scratch(static, J, use_sketch=False)
    assert set(packed_plain) == {"wd", "wd_slot", "wsq", "hz"}
    total_plain = sum(
        np.ascontiguousarray(a).nbytes for a in packed_plain.values()
    )
    assert total_plain == scratch_nbytes(nt, nd, J, sketch_rank=0)


# ----------------------------------------------------------------------
# Corruption matrix: every message type x every corruption mode
# ----------------------------------------------------------------------
def _patch_header(frame: bytes, mutate) -> bytes:
    """Rewrite the JSON header of an otherwise-valid frame."""
    (hlen,) = struct.unpack(">I", frame[4:8])
    header = json.loads(frame[8 : 8 + hlen])
    mutate(header)
    patched = json.dumps(header, separators=(",", ":")).encode()
    return frame[:4] + struct.pack(">I", len(patched)) + patched + frame[8 + hlen :]


def _bump_version(h):
    h["v"] = protocol.PROTOCOL_VERSION + 1


def _warp_type(h):
    h["type"] = "warp"


def _bogus_fields(h):
    h["fields"] = {"no_such_field": 1}


def _bogus_manifest(h):
    h["arrays"] = [{"name": "x"}]  # no dtype/shape


def _garbage_header(frame: bytes) -> bytes:
    (hlen,) = struct.unpack(">I", frame[4:8])
    return frame[:8] + b"\xff" * hlen + frame[8 + hlen :]


def _non_dict_header(frame: bytes) -> bytes:
    (hlen,) = struct.unpack(">I", frame[4:8])
    patched = b"[1,2]"
    return frame[:4] + struct.pack(">I", len(patched)) + patched + frame[8 + hlen :]


CORRUPTIONS = [
    ("bad_magic", lambda f: b"XXXX" + f[4:], "magic"),
    ("short_frame", lambda f: f[:6], "truncated frame"),
    (
        "truncated_header",
        lambda f: f[:4] + struct.pack(">I", len(f)) + f[8:],
        "truncated frame",
    ),
    ("garbage_header", _garbage_header, "undecodable frame header"),
    ("non_dict_header", _non_dict_header, "malformed frame header"),
    ("version_skew", lambda f: _patch_header(f, _bump_version), "version mismatch"),
    ("unknown_type", lambda f: _patch_header(f, _warp_type), "unknown message type"),
    ("bogus_fields", lambda f: _patch_header(f, _bogus_fields), "malformed frame"),
    ("bogus_manifest", lambda f: _patch_header(f, _bogus_manifest), "malformed frame"),
    ("truncated_data_plane", lambda f: f[:-8], "truncated data plane"),
]


@pytest.mark.parametrize(
    "corruption", CORRUPTIONS, ids=lambda c: c[0]
)
@pytest.mark.parametrize("msg_type", sorted(protocol._MESSAGE_TYPES))
def test_every_type_rejects_every_corruption(msg_type, corruption):
    """Each registered message type x each corruption mode must raise
    :class:`ProtocolError` with a diagnosable message — never a bare
    ``struct``/``json``/``numpy``/``TypeError`` leak and never a hang.
    A peer (or a torn gateway-journal tail) can hand the codec any of
    these shapes; the dispatcher's failover and the journal reader's
    skip-loudly path both key off ``ProtocolError`` specifically."""
    name, corrupt, match = corruption
    msg = protocol._MESSAGE_TYPES[msg_type]()
    # A trailing payload array gives the data-plane corruptions bytes to
    # tear; scalar-only frames tear their header instead (still loud).
    frame = encode_message(msg, {"x": np.arange(4.0)})
    with pytest.raises(ProtocolError, match=match):
        decode_message(corrupt(frame))


def test_corruption_matrix_covers_registry():
    """The matrix is total: a new message registration automatically
    joins the corruption sweep (this guard is just for readability of
    intent — parametrize already iterates the live registry)."""
    assert len(protocol._MESSAGE_TYPES) >= 13
    for name, cls in protocol._MESSAGE_TYPES.items():
        assert cls.TYPE == name
        decoded, _ = decode_message(encode_message(cls()))
        assert isinstance(decoded, cls)


def test_journal_messages_roundtrip():
    """The journal records ride the same codec: scalar fields and the
    observation stream must survive bitwise."""
    rng = np.random.default_rng(11)
    stream = rng.standard_normal((6, 4))
    sub = protocol.JournalSubmit(
        seq=7, idem_key="k", k_slots=9, bank="bank0", op="identify",
        stream=stream,
    )
    decoded, arrays = decode_message(encode_message(sub))
    assert arrays == {}
    assert (decoded.seq, decoded.idem_key, decoded.k_slots) == (7, "k", 9)
    assert (decoded.bank, decoded.op) == ("bank0", "identify")
    np.testing.assert_array_equal(decoded.stream, stream)
    settle = protocol.JournalSettle(seq=7, status="error", reason="boom")
    decoded2, _ = decode_message(encode_message(settle))
    assert decoded2 == settle
