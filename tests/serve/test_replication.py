"""Replicated shards: striping invariants and randomized failover chaos.

``replication_factor=R`` stripes each COL_BLOCK-aligned shard across R
channels (``n_shards = n_channels // R``); the dispatcher routes every
stage to the first live channel of the shard's group and fails over down
the group on a send failure, EOF, or ``ErrorReply`` — in-parent
recompute only when the whole group is gone.  Because the stage kernels
are layout-independent, a replica's answer is the primary's answer, so
every schedule of single-group faults must leave the certified output
byte-identical to the healthy run.

The property test drives that claim with *seeded random kill schedules*:
channels sampled at random, timing sampled per-kill between "before the
request" and "mid-stage" (fired from inside ``transport.wait`` while
dispatches are pending), over both transports.  After every request the
certified top-k must equal the exhaustive ranking, and at the end the
``FabricReport`` failover/lost counters must reconcile with a replayed
model of the schedule (who was serving, who survived).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import BatchedPhase4Server, ServingFabric
from repro.serve import sketch as sketch_mod
from repro.serve.transport import TcpTransport, start_local_shards

N_CHANNELS = 4
R = 2


@pytest.fixture()
def small_blocks(monkeypatch):
    """Shrink COL_BLOCK so the 24-entry bank spans multiple shards."""
    monkeypatch.setattr(sketch_mod, "COL_BLOCK", 8)


@pytest.fixture()
def server(serve_inversion):
    return BatchedPhase4Server(serve_inversion)


def _replicated_fabric(serve_inversion, serve_bank, kind, servers):
    kwargs = dict(
        replication_factor=R,
        screen_min_scenarios=1,
        screen_top=4,
        max_batch=8,
    )
    if kind == "shared_memory":
        kwargs["n_workers"] = N_CHANNELS
    else:
        kwargs["transport"] = TcpTransport([s.address for s in servers])
    return ServingFabric(serve_inversion, [serve_bank], **kwargs)


# ----------------------------------------------------------------------
# Striping invariants
# ----------------------------------------------------------------------
def test_replica_groups_partition_channels(
    serve_inversion, serve_bank, small_blocks
):
    """Groups are a partition: every channel adopts exactly one shard per
    bank (the per-channel bank registries need no multi-shard support),
    and R=1 keeps the historical identity channel->shard map."""
    with _replicated_fabric(
        serve_inversion, serve_bank, "shared_memory", []
    ) as fab:
        state = fab._resolve_bank(serve_bank)
        assert len(state.shards) == N_CHANNELS // R
        flat = [c for group in state.replicas for c in group]
        assert sorted(flat) == list(range(N_CHANNELS))
        assert all(len(g) == R for g in state.replicas)
    with ServingFabric(
        serve_inversion, [serve_bank], n_workers=2, max_batch=8
    ) as fab:
        state = fab._resolve_bank(serve_bank)
        assert state.replicas == [[0], [1]]


def test_replication_factor_validated_and_clamped(
    serve_inversion, serve_bank, serve_streams, small_blocks, server
):
    """R < 1 is rejected; R > n_channels clamps to one fully-replicated
    shard and still serves exact results with every channel killable."""
    with pytest.raises(ValueError, match="replication_factor"):
        ServingFabric(
            serve_inversion, [serve_bank], n_workers=2, replication_factor=0
        )
    _, _, d_obs = serve_streams
    ref = server.identify_batch(serve_bank, d_obs, k_slots=6)
    with ServingFabric(
        serve_inversion, [serve_bank], n_workers=2, replication_factor=8,
        screen=False,
    ) as fab:
        state = fab._resolve_bank(serve_bank)
        assert state.shards == [(0, len(serve_bank))]
        assert state.replicas == [[0, 1]]
        fab.inject_fault(0)
        got = fab.identify(d_obs, k_slots=6)
        assert np.array_equal(got.log_evidence, ref.log_evidence)
        assert fab.last_report.failovers >= 1
        assert fab.last_report.workers_lost == 0


def test_report_failover_line(serve_inversion, serve_bank, serve_streams,
                              small_blocks):
    """The operator report renders failovers distinctly from degradation."""
    from repro.serve.reporting import format_fabric_report

    _, _, d_obs = serve_streams
    with _replicated_fabric(
        serve_inversion, serve_bank, "shared_memory", []
    ) as fab:
        state = fab._resolve_bank(serve_bank)
        fab.inject_fault(state.replicas[0][0])
        fab.identify(d_obs[:, :, :4], k_slots=6)
        text = format_fabric_report(fab.last_report, fab.report())
        assert "FAILOVER" in text
        assert "DEGRADED" not in text


# ----------------------------------------------------------------------
# Randomized failover chaos
# ----------------------------------------------------------------------
def _arm_mid_stage_kill(fab, stage_name, wid):
    """One-shot: drop channel ``wid`` from inside ``transport.wait``
    during the next ``stage_name`` stage (dispatches already pending)."""
    orig_stage = fab._run_stage
    T = fab._transport
    armed = {}

    def hooked(state, name, ack_id, make_msg, local_fn):
        if name == stage_name and "fired" not in armed:
            armed["fired"] = True
            orig_wait = T.wait

            def killing_wait(wids, timeout):
                T.wait = orig_wait
                T.inject_fault(wid)
                return orig_wait(wids, timeout)

            T.wait = killing_wait
        return orig_stage(state, name, ack_id, make_msg, local_fn)

    fab._run_stage = hooked
    return lambda: fab.__setattr__("_run_stage", orig_stage)


@pytest.mark.parametrize("kind", ["shared_memory", "tcp"])
@pytest.mark.parametrize("seed", [1, 7])
def test_random_kill_schedule_preserves_certified_topk(
    serve_inversion, serve_bank, serve_streams, small_blocks, server,
    kind, seed,
):
    _, _, d_obs = serve_streams
    nt = server.nt
    rng = np.random.default_rng(seed)
    exhaustive = server.identify_batch(serve_bank, d_obs, k_slots=6)

    servers = start_local_shards(N_CHANNELS) if kind == "tcp" else []
    try:
        with _replicated_fabric(
            serve_inversion, serve_bank, kind, servers
        ) as fab:
            state = fab._resolve_bank(serve_bank)
            groups = [list(g) for g in state.replicas]
            alive = set(range(N_CHANNELS))
            min_failovers = 0
            kills = 0
            for req in range(6):
                unhook = None
                if alive and rng.random() < 0.5:
                    wid = int(rng.choice(sorted(alive)))
                    # Serving = first live channel of the victim's group;
                    # killing it with a partner alive forces a failover.
                    group = next(g for g in groups if wid in g)
                    serving = next(c for c in group if c in alive)
                    partner_alive = any(
                        c in alive for c in group if c != wid
                    )
                    if wid == serving and partner_alive:
                        min_failovers += 1
                    # Timing sampled per-kill: before the request, or
                    # mid-stage while the dispatches are pending.
                    timing = rng.choice(["before", "screen", "exact"])
                    if timing == "before":
                        fab.inject_fault(wid)
                    else:
                        unhook = _arm_mid_stage_kill(fab, str(timing), wid)
                    alive.discard(wid)
                    kills += 1
                dead_groups = sum(
                    1 for g in groups if not any(c in alive for c in g)
                )
                j0 = (req * 4) % 20
                streams = d_obs[:, :, j0 : j0 + 4]
                got = fab.identify(streams, k_slots=6)
                if unhook is not None:
                    unhook()
                rep = fab.last_report
                # Exhaustive == certified, request by request.
                for j in range(streams.shape[2]):
                    top_g = [s for s, _ in got.top_k(4)[j]]
                    top_e = [s for s, _ in exhaustive.top_k(4)[j0 + j]]
                    assert top_g == top_e, (kind, seed, req)
                # Recompute never happens while every group has a live
                # member.  (The converse can lag one request: a mid-stage
                # kill may land after the victim already buffered its
                # reply, deferring the observed fault to the next
                # dispatch — which is why the schedule ends with a
                # settling request below.)
                if rep.workers_lost > 0:
                    assert dead_groups > 0, (kind, seed, req)
            # Settling request: no kill in flight, accounting must now
            # reconcile exactly with the schedule's survivor model.
            dead_groups = sum(
                1 for g in groups if not any(c in alive for c in g)
            )
            got = fab.identify(d_obs[:, :, 20:24], k_slots=6)
            for j in range(4):
                top_g = [s for s, _ in got.top_k(4)[j]]
                top_e = [s for s, _ in exhaustive.top_k(4)[20 + j]]
                assert top_g == top_e, (kind, seed)
            rep = fab.last_report
            assert (rep.workers_lost > 0) == (dead_groups > 0), (kind, seed)
            assert rep.workers_lost >= dead_groups, (kind, seed)
            counters = fab.report()
            # Counters reconcile with the schedule: every kill of a
            # serving channel with a live partner forced >= 1 failover,
            # and failovers only ever come from injected faults.
            assert counters["fabric_failovers"] >= min_failovers
            if kills == 0:
                assert counters["fabric_failovers"] == 0.0
            assert counters["fabric_workers_alive"] == float(len(alive))
            assert counters["fabric_replication"] == float(R)
    finally:
        for s in servers:
            s.stop()


# ----------------------------------------------------------------------
# ErrorReply mid-batch: failover, not queue poisoning
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["shared_memory", "tcp"])
def test_error_reply_mid_batch_triggers_failover(
    serve_inversion, serve_bank, serve_streams, small_blocks, server, kind
):
    """A peer that answers a stage with ``ErrorReply`` mid-batch is
    retired and its shard fails over to the replica — the request
    completes exactly, and the ticket queue keeps serving afterwards
    (the error must never poison pending or future submissions)."""
    from repro.serve import protocol

    _, _, d_obs = serve_streams
    ref = server.identify_batch(serve_bank, d_obs, k_slots=6)
    servers = start_local_shards(N_CHANNELS) if kind == "tcp" else []
    try:
        with ServingFabric(
            serve_inversion, [serve_bank],
            replication_factor=R, screen=False, max_batch=8,
            **(
                {"n_workers": N_CHANNELS}
                if kind == "shared_memory"
                else {"transport": TcpTransport([s.address for s in servers])}
            ),
        ) as fab:
            T = fab._transport
            orig_wait = T.wait
            poisoned = {}

            def erroring_wait(wids, timeout):
                events = orig_wait(wids, timeout)
                out = []
                for wid, reply in events:
                    if not poisoned and isinstance(reply, protocol.Ack):
                        poisoned["wid"] = wid
                        out.append((
                            wid,
                            protocol.ErrorReply(
                                req_id=reply.req_id,
                                message="injected peer failure",
                            ),
                        ))
                    else:
                        out.append((wid, reply))
                return out

            T.wait = erroring_wait
            got = fab.identify(d_obs[:, :, :4], k_slots=6)
            T.wait = orig_wait
            assert "wid" in poisoned  # the rewrite actually fired
            rep = fab.last_report
            assert rep.failovers >= 1
            assert rep.workers_lost == 0  # replica served, no recompute
            if kind == "shared_memory":
                assert np.array_equal(
                    got.log_evidence, ref.log_evidence[:4]
                )
            else:
                np.testing.assert_allclose(
                    got.log_evidence, ref.log_evidence[:4], rtol=1e-12
                )
            # Queue not poisoned: later submissions are exact and clean.
            got2 = fab.identify(d_obs[:, :, 4:8], k_slots=6)
            assert fab.last_report.workers_lost == 0
            if kind == "shared_memory":
                assert np.array_equal(
                    got2.log_evidence, ref.log_evidence[4:8]
                )
            else:
                np.testing.assert_allclose(
                    got2.log_evidence, ref.log_evidence[4:8], rtol=1e-12
                )
            counters = fab.report()
            assert counters["fabric_workers_alive"] == float(N_CHANNELS - 1)
            assert counters["fabric_failovers"] >= 1.0
    finally:
        for s in servers:
            s.stop()
