"""ScenarioBank: determinism, diversity, coverage, end-to-end viability."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve import BatchedPhase4Server, ScenarioBank, entry_seed
from repro.serve.scenarios import _HALTON_BASES, halton_sequence


def test_bank_generates_twenty_plus_distinct_scenarios(serve_bank):
    assert len(serve_bank) >= 20
    # Distinct ids, distinct seeds, distinct truth fields.
    assert len(set(serve_bank.ids())) == len(serve_bank)
    seeds = {e.seed for e in serve_bank}
    assert len(seeds) == len(serve_bank)
    M = serve_bank.truth_batch()
    flat = M.reshape(-1, M.shape[-1])
    for i in range(flat.shape[1]):
        for j in range(i + 1, flat.shape[1]):
            assert not np.array_equal(flat[:, i], flat[:, j])


def test_bank_spans_magnitude_and_hypocenter_ranges(serve_bank):
    mw = serve_bank.magnitudes()
    assert np.all(np.isfinite(mw))
    # Log-uniform peak uplift over an 8x range -> a clear magnitude spread.
    assert mw.max() - mw.min() > 0.3
    hypo = serve_bank.hypocenters()
    lo, hi = serve_bank.hypocenter_range
    assert hypo.min() >= lo - 1e-12 and hypo.max() <= hi + 1e-12
    assert hypo.max() - hypo.min() > 0.6 * (hi - lo)
    # Kinematic axes vary too.
    assert len({round(e.velocity_factor, 6) for e in serve_bank}) > 10
    assert len({round(e.rise_time_slots, 6) for e in serve_bank}) > 10


def test_bank_is_deterministic_and_prefix_stable(serve_twin, serve_bank):
    c = serve_twin.config
    other = ScenarioBank(
        serve_twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=11
    )
    other.generate(5)  # incremental growth must not change earlier entries
    other.generate(24)
    for a, b in zip(serve_bank, other):
        assert a.scenario_id == b.scenario_id
        assert a.seed == b.seed
        np.testing.assert_array_equal(a.scenario.m, b.scenario.m)
    # A different bank seed produces different scenarios.
    reseeded = ScenarioBank(
        serve_twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=12
    )
    reseeded.generate(1)
    assert not np.array_equal(reseeded[0].scenario.m, serve_bank[0].scenario.m)


def test_observation_batch_matches_per_stream_kernel(serve_twin, serve_bank, serve_streams):
    d_clean, noise, d_obs = serve_streams
    assert d_clean.shape == d_obs.shape == (
        serve_twin.config.n_slots,
        serve_twin.sensors.n,
        len(serve_bank),
    )
    # The batched clean records equal per-scenario kernel matvecs.
    for j in (0, 11, len(serve_bank) - 1):
        ref = serve_twin.F.matvec(serve_bank[j].scenario.m)
        np.testing.assert_allclose(d_clean[:, :, j], ref, rtol=0, atol=1e-14)
    # Noise is actually added, and deterministically.
    assert not np.array_equal(d_clean, d_obs)
    d_clean2, noise2, d_obs2 = serve_bank.observation_batch(
        serve_twin.F, noise_relative=0.01
    )
    np.testing.assert_array_equal(d_obs, d_obs2)
    # One fleet-wide noise model: every stream is drawn (and later inverted)
    # under the same per-sensor sigma.
    np.testing.assert_array_equal(noise.sigma, noise2.sigma)
    assert noise.sigma.shape == (serve_twin.config.n_slots, serve_twin.sensors.n)


def test_every_banked_scenario_runs_end_to_end(serve_twin, serve_bank, serve_streams, serve_inversion):
    """Each bank entry flows through the full twin: observe -> invert -> forecast."""
    _, _, d_obs = serve_streams
    server = BatchedPhase4Server(serve_inversion)
    result = server.serve(d_obs, thresholds=(0.01, 0.05, 0.1))
    assert result.n_streams == len(serve_bank)
    assert np.all(np.isfinite(result.m_map))
    for j, entry in enumerate(serve_bank):
        truth = entry.scenario.m
        err = np.linalg.norm(result.m_map[:, :, j] - truth) / np.linalg.norm(truth)
        assert err < 1.0  # the MAP is informative for every scenario
        assert np.all(np.isfinite(result.forecasts[j].mean))
    assert result.decisions is not None and len(result.decisions) == len(serve_bank)


def test_bank_access_and_summary(serve_bank):
    entry = serve_bank[3]
    assert serve_bank[entry.scenario_id] is entry
    table = serve_bank.summary_table()
    assert entry.scenario_id in table
    assert len(table.splitlines()) == len(serve_bank) + 1


def test_halton_sequence_is_low_discrepancy_prefix():
    pts = np.array([halton_sequence(i + 1, 2) for i in range(64)])
    assert pts.shape == (64, 2)
    assert np.all((0 <= pts) & (pts < 1))
    # Every quarter of [0,1) gets hit on both axes within 16 points.
    for axis in range(2):
        hist, _ = np.histogram(pts[:16, axis], bins=4, range=(0, 1))
        assert np.all(hist > 0)
    with pytest.raises(ValueError):
        halton_sequence(1, len(_HALTON_BASES) + 1)


def test_entry_seeds_never_collide_across_banks():
    """Regression: ``seed * 10_000 + index`` collided once any index hit 10k.

    The canonical collision — bank 0 entry 10 001 vs bank 1 entry 1 shared
    both the rupture seed and the observation-noise stream — plus a broad
    uniqueness property over many (bank, index) pairs, checked on the seed
    derivation alone (no scenarios built).
    """
    assert 0 * 10_000 + 10_001 == 1 * 10_000 + 1  # the old scheme's collision
    assert entry_seed(0, 10_001) != entry_seed(1, 1)
    seeds = {
        entry_seed(bank, index)
        for bank in range(5)
        for index in range(2_000)
    }
    assert len(seeds) == 5 * 2_000


def test_noise_draws_differ_across_banks(serve_twin):
    """Two banks' observation noise streams are decorrelated by bank seed."""
    c = serve_twin.config
    banks = [
        ScenarioBank(serve_twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=s)
        for s in (21, 22)
    ]
    for b in banks:
        b.generate(2)
    draws = []
    for b in banks:
        d_clean, noise, d_obs = b.observation_batch(serve_twin.F, noise_relative=0.01)
        draws.append(d_obs - d_clean)
    assert not np.allclose(draws[0], draws[1])
    # ...and within one bank, entries get independent noise streams.
    assert not np.allclose(draws[0][:, :, 0], draws[0][:, :, 1])


def test_design_axes_decorrelated_on_higher_dim_trace_grids():
    """Regression: every extra hypocenter axis must get its own Halton base.

    On a >= 3-D trace grid the old code reused one radical-inverse
    coordinate for *all* cross-dip nucleation axes, making them identical
    (perfectly correlated) and collapsing the design space to a line.
    """
    fake_axes = [np.linspace(0.0, 1.0, 4)] * 3  # 3 horizontal axes
    bank = ScenarioBank.__new__(ScenarioBank)
    bank.trace = SimpleNamespace(axes=fake_axes)
    bank.peak_uplift_range = (0.15, 1.2)
    bank.hypocenter_range = (0.15, 0.55)
    bank.velocity_factor_range = (0.7, 1.6)
    bank.rise_time_slots_range = (4.0, 10.0)
    hypo = np.array([bank._design_point(i)[1] for i in range(64)])
    assert hypo.shape == (64, 3)
    c1, c2 = hypo[:, 1], hypo[:, 2]
    assert not np.allclose(c1, c2)  # the old bug: c1 == c2 exactly
    corr = np.corrcoef(c1, c2)[0, 1]
    assert abs(corr) < 0.5
    # Prefix stability: extra dimensions never change the first four axes.
    bank2d = ScenarioBank.__new__(ScenarioBank)
    bank2d.trace = SimpleNamespace(axes=fake_axes[:1])
    for name in (
        "peak_uplift_range",
        "hypocenter_range",
        "velocity_factor_range",
        "rise_time_slots_range",
    ):
        setattr(bank2d, name, getattr(bank, name))
    for i in (0, 7, 31):
        p3, h3, v3, r3 = bank._design_point(i)
        p1, h1, v1, r1 = bank2d._design_point(i)
        assert (p3, v3, r3) == (p1, v1, r1)
        assert h3[0] == h1[0]
