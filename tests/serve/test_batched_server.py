"""BatchedPhase4Server: per-stream equivalence with the sequential solves.

The batched pass must be a pure restructuring of the arithmetic: every
stream's MAP field and forecast must match a sequential
``ToeplitzBayesianInversion.infer`` / ``predict`` on that stream alone.
The triangular solves are bit-identical (multi-RHS ``potrs`` visits each
column independently); the batched FFT rmatvec and ``gemm`` may round
differently, so equivalence is asserted at ~10 ulp of the result scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import BatchedPhase4Server
from repro.twin.earlywarning import AlertLevel, StreamingInverter

ATOL = 1e-12  # result scales are O(1); measured batched-vs-seq gap ~1e-15


@pytest.fixture(scope="module")
def server(serve_inversion):
    return BatchedPhase4Server(serve_inversion)


def test_infer_batch_matches_sequential_per_stream(server, serve_inversion, serve_streams):
    _, _, d_obs = serve_streams
    m_batch = server.infer_batch(d_obs)
    assert m_batch.shape == (server.nt, server.nm, d_obs.shape[2])
    for j in range(d_obs.shape[2]):
        m_seq = serve_inversion.infer(d_obs[:, :, j])
        np.testing.assert_allclose(m_batch[:, :, j], m_seq, rtol=0, atol=ATOL)


def test_predict_batch_matches_sequential_per_stream(server, serve_inversion, serve_streams):
    _, _, d_obs = serve_streams
    forecasts = server.predict_batch(d_obs)
    assert len(forecasts) == d_obs.shape[2]
    cov0 = forecasts[0].covariance
    for j, fc in enumerate(forecasts):
        ref = serve_inversion.predict(d_obs[:, :, j])
        np.testing.assert_allclose(fc.mean, ref.mean, rtol=0, atol=ATOL)
        # Covariance is geometry-only: one shared exact matrix.
        assert fc.covariance is cov0
        np.testing.assert_array_equal(fc.covariance, ref.covariance)


def test_batched_k_solve_is_bit_identical(serve_inversion, serve_streams):
    """The data-space solve itself (the trsm) is bitwise column-independent."""
    _, _, d_obs = serve_streams
    n = serve_inversion.nt * serve_inversion.nd
    rhs = d_obs.reshape(n, -1)
    z_batch = serve_inversion.solve_K(rhs)
    for j in range(rhs.shape[1]):
        np.testing.assert_array_equal(z_batch[:, j], serve_inversion.solve_K(rhs[:, j]))


def test_stream_list_input_and_validation(server, serve_streams):
    _, _, d_obs = serve_streams
    as_list = [d_obs[:, :, j] for j in range(5)]
    np.testing.assert_array_equal(server.stack_streams(as_list), d_obs[:, :, :5])
    single = server.stack_streams(d_obs[:, :, 0])
    assert single.shape == (server.nt, server.nd, 1)
    with pytest.raises(ValueError):
        server.stack_streams(np.zeros((server.nt, server.nd + 1, 3)))


def test_partial_forecasts_match_streaming_inverter(server, serve_inversion, serve_streams):
    _, _, d_obs = serve_streams
    si = StreamingInverter(serve_inversion)
    for k_slots in (1, 4, server.nt):
        fcs = server.forecast_partial_batch(d_obs, k_slots)
        for j in (0, 9, d_obs.shape[2] - 1):
            ref = si.forecast_partial(d_obs[:, :, j], k_slots)
            np.testing.assert_allclose(fcs[j].mean, ref.mean, rtol=0, atol=ATOL)
            np.testing.assert_allclose(
                fcs[j].covariance, ref.covariance, rtol=0, atol=ATOL
            )
    # The shared incremental engine advanced to the deepest horizon asked.
    rep = server.report()
    assert rep["streaming_slots_advanced"] == float(server.nt)
    assert rep["streaming_horizons_cached"] >= 3.0
    with pytest.raises(ValueError):
        server.forecast_partial_batch(d_obs, server.nt + 1)
    with pytest.raises(ValueError):
        server.forecast_partial_batch(d_obs, 0)


def test_ragged_fleet_matches_per_stream_horizons(server, serve_inversion, serve_streams):
    """Streams at different horizons in one batched pass, grouped by slot."""
    _, _, d_obs = serve_streams
    S = d_obs.shape[2]
    rng = np.random.default_rng(5)
    horizons = rng.integers(1, server.nt + 1, size=S)
    horizons[0], horizons[-1] = 1, server.nt  # pin the extremes
    fcs = server.forecast_partial_batch(d_obs, horizons)
    si = StreamingInverter(serve_inversion)
    for j in range(S):
        ref = si.forecast_partial(d_obs[:, :, j], int(horizons[j]))
        np.testing.assert_allclose(fcs[j].mean, ref.mean, rtol=0, atol=ATOL)
        np.testing.assert_allclose(fcs[j].covariance, ref.covariance, rtol=0, atol=ATOL)
    # Wrong-length horizon vectors are rejected.
    with pytest.raises(ValueError):
        server.forecast_partial_batch(d_obs, horizons[:-1])


def test_open_fleet_persistent_session(server, serve_inversion, serve_streams):
    """A long-lived fleet only moves forward and matches one-shot serving."""
    _, _, d_obs = serve_streams
    fleet = server.open_fleet(d_obs[:, :, :4])
    fleet.advance(2)
    fleet.advance([3, 2, 5, 4])  # ragged growth, monotone per stream
    with pytest.raises(ValueError):
        fleet.advance(1)  # horizons never rewind
    fcs = fleet.forecasts()
    oneshot = server.forecast_partial_batch(d_obs[:, :, :4], [3, 2, 5, 4])
    for got, ref in zip(fcs, oneshot):
        np.testing.assert_allclose(got.mean, ref.mean, rtol=0, atol=ATOL)
        assert got.covariance is ref.covariance  # shared per-horizon snapshot


def test_fleet_warning_latencies_match_streaming_inverter(server, serve_inversion, serve_streams):
    _, _, d_obs = serve_streams
    thresholds = dict(advisory=0.01, watch=0.03, warning=0.08)
    lat, decisions = server.warning_latencies(d_obs, **thresholds)
    assert len(lat) == d_obs.shape[2]
    assert len(decisions) == server.nt and len(decisions[0]) == d_obs.shape[2]
    si = StreamingInverter(serve_inversion)
    for j in (0, 5, 17):
        ref_lat, ref_dec = si.warning_latency(d_obs[:, :, j], **thresholds)
        assert lat[j] == ref_lat
        for k in range(server.nt):
            np.testing.assert_array_equal(
                decisions[k][j].levels, ref_dec[k].levels
            )
    # The bank is diverse enough that not every stream alerts identically.
    assert len({(-1 if v is None else v) for v in lat}) > 1


def test_latency_sweep_memory_bounded_for_large_fleet(serve_inversion, serve_streams):
    """A full ``warning_latencies`` sweep over a 64-stream fleet must hold
    at most the configured number of covariance snapshots — not one dense
    ``(Nt Nq)^2`` copy per horizon (the pre-fix O(Nt) blow-up)."""
    _, _, d_obs = serve_streams
    reps = -(-64 // d_obs.shape[2])
    D = np.tile(d_obs, (1, 1, reps))[:, :, :64]  # a 64-stream fleet
    server = BatchedPhase4Server(serve_inversion)
    eng = server.streaming_engine()
    limit = eng.cov_cache_limit
    nb = serve_inversion.nt * serve_inversion.nq
    latencies, decisions = server.warning_latencies(D, 0.01, 0.05, 0.10)
    assert len(latencies) == 64 and len(decisions) == server.nt
    assert eng.horizons_cached <= limit + 2
    assert eng.cov_cache_nbytes() <= limit * nb * nb * 8
    rep = server.report()
    assert rep["streaming_cov_cache_limit"] == float(limit)
    assert rep["streaming_cov_cache_bytes"] <= limit * nb * nb * 8


def test_serve_requires_completed_phases(serve_twin, serve_streams):
    from repro.inference.bayes import ToeplitzBayesianInversion
    from repro.inference.noise import NoiseModel

    d_clean, _, d_obs = serve_streams
    noise = NoiseModel.relative(d_clean[:, :, 0])
    bare = ToeplitzBayesianInversion(
        serve_twin.F, serve_twin.prior, noise, Fq=serve_twin.Fq
    )
    with pytest.raises(RuntimeError):
        BatchedPhase4Server(bare)
    bare.assemble_data_space_hessian()
    server = BatchedPhase4Server(bare)  # Phase 2 alone allows MAP serving
    assert np.all(np.isfinite(server.infer_batch(d_obs)))
    with pytest.raises(RuntimeError):
        server.predict_batch(d_obs)
    with pytest.raises(RuntimeError):
        server.forecast_partial_batch(d_obs, 2)
