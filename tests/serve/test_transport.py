"""TCP shard transport: loopback multi-"host" serving, faults, respawn.

The acceptance contract of the networked fabric: over a
:class:`~repro.serve.transport.TcpTransport` against loopback
:class:`~repro.serve.transport.ShardServer` processes-worth of shards,
the certified top-k must equal the exhaustive ranking on *every* request
(the screen protocol is location-independent, so moving shards off-host
must change nothing about the math), a mid-stream connection drop must
degrade gracefully — accounted in ``FabricReport``, no hang, exact
results — and ``respawn_workers`` must restore the channel with its bank
state re-shipped.  Shared-memory bitwise equivalence is pinned separately
(``tests/serve/test_fabric.py``); these tests pin the *cross-transport*
equivalences at matching tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import ServingFabric
from repro.serve import sketch as sketch_mod
from repro.serve.transport import TcpTransport, start_local_shards


@pytest.fixture()
def small_blocks(monkeypatch):
    """Shrink COL_BLOCK so the 24-entry bank spans both TCP shards."""
    monkeypatch.setattr(sketch_mod, "COL_BLOCK", 8)


@pytest.fixture()
def shard_servers():
    """Two loopback shard servers, stopped at teardown."""
    servers = start_local_shards(2)
    yield servers
    for s in servers:
        s.stop()


def _tcp_fabric(serve_inversion, serve_bank, servers, **overrides):
    kw = dict(
        transport=TcpTransport([s.address for s in servers]),
        sketch_rank=3,
        screen_min_scenarios=1,
        screen_top=4,
        max_batch=8,
    )
    kw.update(overrides)
    return ServingFabric(serve_inversion, [serve_bank], **kw)


def test_tcp_certified_equals_exhaustive_every_request(
    serve_inversion, serve_bank, serve_streams, small_blocks, shard_servers
):
    """Certified top-k over TCP shards == exhaustive ranking, request by
    request, on the fabric bench workload shape (batched unique streams)."""
    _, _, d_obs = serve_streams
    with _tcp_fabric(serve_inversion, serve_bank, shard_servers) as fab:
        for j0 in (0, 8, 16):
            streams = d_obs[:, :, j0 : j0 + 8]
            certified = fab.identify(streams, k_slots=6)
            assert fab.last_report.transport == "tcp"
            assert not fab.last_report.degraded
            exhaustive = fab.identify(streams, k_slots=6, screen=False)
            k = 4
            for j in range(streams.shape[2]):
                top_c = set(np.argsort(-certified.log_evidence[j])[:k])
                top_e = set(np.argsort(-exhaustive.log_evidence[j])[:k])
                assert top_c == top_e


def test_tcp_matches_in_process_to_machine_precision(
    serve_inversion, serve_bank, serve_streams, small_blocks, shard_servers
):
    """Remote exact evidence vs the parent's in-process path: the shard
    servers compute at relative column offsets on shipped slices, so the
    comparison is allclose at machine precision, not bitwise."""
    _, _, d_obs = serve_streams
    streams = d_obs[:, :, :6]
    with _tcp_fabric(serve_inversion, serve_bank, shard_servers) as fab:
        remote = fab.identify(streams, k_slots=6, screen=False)
    with ServingFabric(
        serve_inversion, [serve_bank], n_workers=0, max_batch=8
    ) as flat:
        local = flat.identify(streams, k_slots=6, screen=False)
    np.testing.assert_allclose(
        remote.log_evidence, local.log_evidence, rtol=1e-12
    )
    np.testing.assert_allclose(
        remote.probabilities, local.probabilities, rtol=1e-9
    )


def test_tcp_midstream_drop_degrades_gracefully(
    serve_inversion, serve_bank, serve_streams, small_blocks, shard_servers
):
    """Dropping a shard connection mid-stream: the next request recomputes
    the lost shard in the parent (exact results, workers_lost accounted,
    no hang) and a later respawn reconnects + re-ships the bank state."""
    _, _, d_obs = serve_streams
    streams = d_obs[:, :, :5]
    with _tcp_fabric(serve_inversion, serve_bank, shard_servers) as fab:
        baseline = fab.identify(streams, k_slots=6, screen=False)
        assert fab.inject_fault(0) is True
        assert fab.inject_fault(0) is False  # idempotent on a dead channel
        degraded = fab.identify(streams, k_slots=6, screen=False)
        rep = fab.last_report
        assert rep.degraded and rep.workers_lost >= 1
        assert rep.transport == "tcp"
        np.testing.assert_allclose(
            degraded.log_evidence, baseline.log_evidence, rtol=1e-12
        )
        assert fab.report()["fabric_workers_alive"] == 1.0
        # Respawn reconnects and re-ships the shard's built state.
        assert fab.respawn_workers() == 1
        assert fab.report()["fabric_workers_alive"] == 2.0
        again = fab.identify(streams, k_slots=6, screen=False)
        assert not fab.last_report.degraded
        np.testing.assert_allclose(
            again.log_evidence, baseline.log_evidence, rtol=1e-12
        )
        with pytest.raises(IndexError, match="out of range"):
            fab.inject_fault(99)


def test_tcp_forecast_mixture_matches_flat(
    serve_inversion, serve_bank, serve_streams, small_blocks, shard_servers
):
    """Sharded mixture moments gathered over TCP == the flat fabric's."""
    _, _, d_obs = serve_streams
    streams = d_obs[:, :, :4]
    with _tcp_fabric(serve_inversion, serve_bank, shard_servers) as fab:
        remote = fab.forecast_mixture(streams, k_slots=6)
    with ServingFabric(
        serve_inversion, [serve_bank], n_workers=0, max_batch=8
    ) as flat:
        local = flat.forecast_mixture(streams, k_slots=6)
    for r, l in zip(remote, local):
        np.testing.assert_allclose(r.mean, l.mean, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(
            r.covariance, l.covariance, rtol=1e-9, atol=1e-12
        )


def test_tcp_unreachable_shard_fails_cleanly(
    serve_inversion, serve_bank, small_blocks
):
    """A dead address at bring-up raises and leaks nothing — the failed
    constructor drains the transport ledger (no orphan allocations)."""
    transport = TcpTransport([("127.0.0.1", 1)], connect_timeout=0.5)
    with pytest.raises(OSError):
        ServingFabric(
            serve_inversion, [serve_bank], transport=transport, max_batch=4
        )
    assert transport._handles == []


def test_unknown_transport_name_rejected(serve_inversion):
    with pytest.raises(ValueError, match="unknown transport name"):
        ServingFabric(serve_inversion, transport="carrier-pigeon")


def test_ephemeral_ports_everywhere(shard_servers):
    """No fixed ports anywhere in the loopback path: every server binds
    port 0 and reports the OS-assigned port before accepting work."""
    ports = [s.address[1] for s in shard_servers]
    assert all(p != 0 for p in ports)
    assert len(set(ports)) == len(ports)


def test_cli_serve_zero_prints_bound_port():
    """``--serve 0`` must start an ephemeral-port server (0 is falsy —
    the historical bug dropped straight through to the usage message)
    and print the *bound* address, which callers parse to connect."""
    import os
    import re
    import signal
    import socket
    import subprocess
    import sys

    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.transport", "--serve", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        m = re.search(r"listening on ([\d.]+):(\d+)\s*$", line)
        assert m, f"unparseable announce line: {line!r}"
        host, port = m.group(1), int(m.group(2))
        assert port != 0  # the OS-assigned port, not the requested one
        with socket.create_connection((host, port), timeout=10):
            pass
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
