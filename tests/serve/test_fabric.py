"""ServingFabric: sharded/hierarchical identification equivalence and ops.

What must hold:

* **Sharded == flat, bitwise.**  With the screen disabled, the fabric's
  evidences/posteriors are ``np.array_equal`` to
  ``BatchedPhase4Server.identify_batch`` (and its forecasts to
  ``forecast_partial_batch``) — guaranteed structurally by the
  ``COL_BLOCK``-aligned accumulation, not by BLAS luck.
* **Certified screen == exhaustive ranking**, while the heuristic screen
  can be fooled by an adversarial bank (constructed here) — the reason the
  certified mode exists.
* **Worker loss degrades gracefully**: results stay exact, the report says
  degraded.
* **Micro-batching, budget-driven bank eviction, and re-attach** behave.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.serve.sketch as sketch_mod
from repro.serve import BatchedPhase4Server, ScenarioIdentifier, ServingFabric
from repro.util.memory import MemoryBudget


@pytest.fixture()
def small_blocks(monkeypatch):
    """Shrink COL_BLOCK so a 24-entry bank spans several blocks/shards.

    The bitwise shard-equivalence guarantee is *structural* (both paths
    chunk on the same absolute block boundaries), so exercising it with a
    small block at a small bank is exactly as strong as the default 256 at
    1024 — and actually covers the multi-shard alignment logic.
    ``COL_BLOCK`` lives in the shared sketch layer (``repro.serve.sketch``),
    which every chunked path reads dynamically.
    """
    monkeypatch.setattr(sketch_mod, "COL_BLOCK", 8)


@pytest.fixture()
def server(serve_inversion):
    return BatchedPhase4Server(serve_inversion)


# ----------------------------------------------------------------------
# Sharded equivalence
# ----------------------------------------------------------------------
def test_sharded_bitmatch_identify(server, serve_bank, serve_streams, small_blocks):
    _, _, d_obs = serve_streams
    nt = server.nt
    ref = server.identify_batch(serve_bank, d_obs, k_slots=6)
    with server.fabric([serve_bank], n_workers=2, screen=False, max_batch=32) as fab:
        state = fab._resolve_bank(serve_bank)
        assert len(state.shards) == 2  # the bank really is sharded
        got = fab.identify(d_obs, k_slots=6)
        assert np.array_equal(got.log_evidence, ref.log_evidence)
        assert np.array_equal(got.log_posterior, ref.log_posterior)
        assert np.array_equal(got.probabilities, ref.probabilities)
        assert got.ids == ref.ids

        # Ragged horizons, same guarantee.
        rng = np.random.default_rng(7)
        hz = rng.integers(1, nt + 1, size=d_obs.shape[2])
        ref_r = server.identify_batch(serve_bank, d_obs, k_slots=hz)
        got_r = fab.identify(d_obs, hz)
        assert np.array_equal(got_r.log_evidence, ref_r.log_evidence)
        assert np.array_equal(got_r.horizons, ref_r.horizons)


def test_sharded_bank_state_bitmatch(server, serve_bank, small_blocks):
    """Worker-built shard states equal the flat identifier's, bitwise."""
    ident = server.scenario_identifier(serve_bank)
    with server.fabric([serve_bank], n_workers=2) as fab:
        v = fab._resolve_bank(serve_bank).views
        assert np.array_equal(v["wmu"], ident.states)
        assert np.array_equal(v["musq_cum"], ident.cumulative_squared_norms())
        assert np.array_equal(v["slot_musq"], ident.slot_squared_norms())


def test_in_process_fabric_matches_workers(server, serve_bank, serve_streams, small_blocks):
    """``n_workers=0`` (no processes at all) is the same arithmetic."""
    _, _, d_obs = serve_streams
    ref = server.identify_batch(serve_bank, d_obs, k_slots=5)
    with server.fabric([serve_bank], n_workers=0, screen=False) as fab:
        got = fab.identify(d_obs, k_slots=5)
        assert np.array_equal(got.log_evidence, ref.log_evidence)


def test_forecast_bitmatch(server, serve_bank, serve_streams):
    _, _, d_obs = serve_streams
    ref = server.forecast_partial_batch(d_obs, k_slots=4)
    with server.fabric([serve_bank], n_workers=0) as fab:
        got = fab.forecast(d_obs, k_slots=4)
        for f_ref, f_got in zip(ref, got):
            assert np.array_equal(f_got.mean, f_ref.mean)
            assert np.array_equal(f_got.covariance, f_ref.covariance)


# ----------------------------------------------------------------------
# Hierarchical screen
# ----------------------------------------------------------------------
def test_certified_screen_matches_exhaustive(server, serve_bank, serve_streams):
    _, _, d_obs = serve_streams
    nt = server.nt
    ref = server.identify_batch(serve_bank, d_obs, k_slots=nt)
    with server.fabric(
        [serve_bank], n_workers=2, screen_stride=2, screen_top=3,
        screen_min_scenarios=1,
    ) as fab:
        # Single-stream requests keep candidate sets sharp.
        for j in range(6):
            got = fab.identify(d_obs[:, :, j : j + 1], k_slots=nt)
            assert fab.last_report.screened
            top_ref = [s for s, _ in ref.top_k(3)[j]]
            top_got = [s for s, _ in got.top_k(3)[0]]
            assert top_got == top_ref


def test_certified_screen_actually_prunes(server, serve_bank, serve_streams):
    """On a well-separated stream the certified screen must drop scenarios."""
    d_clean, _, _ = serve_streams
    nt = server.nt
    with server.fabric(
        [serve_bank], n_workers=0, screen_stride=2, screen_top=1,
        screen_min_scenarios=1,
    ) as fab:
        # Noise-free record of entry 0: evidence gaps are as large as this
        # bank can produce, so the certified bounds must exclude somebody.
        fab.identify(d_clean[:, :, :1], k_slots=nt)
        rep = fab.last_report
        assert rep.screened and not rep.screen_fallback
        assert rep.n_candidates < rep.n_scenarios
        assert rep.pruned_fraction > 0.0


def test_screen_fallback_on_weak_pruning(server, serve_bank, serve_streams):
    """A diverse batch unions its candidates; the fabric then runs exact."""
    _, _, d_obs = serve_streams
    ref = server.identify_batch(serve_bank, d_obs, k_slots=3)
    with server.fabric(
        [serve_bank], n_workers=0, screen_stride=3, screen_top=12,
        screen_min_scenarios=1,
    ) as fab:
        got = fab.identify(d_obs, k_slots=3)  # shallow horizon: loose bounds
        rep = fab.last_report
        if rep.screen_fallback:  # everything went exact: full equality
            assert np.array_equal(got.log_evidence, ref.log_evidence)
            # ...and the report reflects the unpruned reality.
            assert rep.n_candidates == rep.n_scenarios
            assert rep.pruned_fraction == 0.0
        for j in range(d_obs.shape[2]):
            assert got.map_ids()[j] == ref.map_ids()[j]


def test_invalid_prior_does_not_leak_segments(server, serve_bank):
    """attach_bank must validate before allocating shared memory."""
    with server.fabric([], n_workers=0) as fab:
        before = fab.budget.used
        with pytest.raises(ValueError, match="prior_weights"):
            fab.attach_bank(serve_bank, prior_weights=np.ones(3))
        assert fab.banks() == []
        assert fab.budget.used == before  # nothing registered, nothing leaked


def _whitened_scenario(L, nt, nd, slot0, tail):
    """Records whose whitened states are ``slot0`` at slot 0, ``tail`` after."""
    w = np.zeros(nt * nd)
    w[:nd] = slot0
    for s in range(1, nt):
        w[s * nd : (s + 1) * nd] = tail[s - 1]
    return (L @ w).reshape(nt, nd)


def test_certified_catches_adversarial_misranking(server):
    """A loose-bound scenario fools the heuristic screen, never the certified.

    Constructed in whitened space (records are ``L w``): every scenario
    matches the data on the single screened (highest-energy) slot, so the
    coarse proxy alone cannot order them; the omitted slots carry the
    truth.  ``loose`` has its tail *anti-aligned* with the data — largest
    possible gap between its evidence upper bound and its exact evidence —
    so the heuristic (fixed top-1 by upper bound) ranks it far too high,
    while the certified screen keeps every contender and reproduces the
    exhaustive ordering exactly.
    """
    inv = server.inv
    nt, nd = server.nt, server.nd
    L = np.asarray(inv.cholesky_lower)
    rng = np.random.default_rng(13)
    e = np.zeros(nd)
    e[0] = 10.0  # slot 0 dominates the energy -> it is the screened slot
    f = [v / np.linalg.norm(v) for v in rng.standard_normal((nt - 1, nd))]

    d_stream = _whitened_scenario(L, nt, nd, e, f)
    truth = _whitened_scenario(L, nt, nd, e, f)  # exact match
    # Anti-aligned tail, doubled: exact evidence is poor, but the
    # norm-only bounds cannot see the sign -> wildly optimistic ub.
    loose = _whitened_scenario(L, nt, nd, e, [-2.0 * v for v in f])
    # Aligned tails: bounds are tight (ub == exact evidence).
    mid = _whitened_scenario(L, nt, nd, e + 4.0 * np.eye(nd)[1], f)
    far = _whitened_scenario(L, nt, nd, e, [6.0 * v for v in f])

    records = np.stack([truth, loose, mid, far], axis=-1)
    ref = ScenarioIdentifier(inv.streaming_state(), records)
    sess = ref.open(d_stream[:, :, None])
    sess.advance(nt)
    exhaustive = [s for s, _ in sess.posterior().top_k(4)[0]]
    assert exhaustive == ["s0", "s2", "s1", "s3"]  # truth, mid, loose, far

    with server.fabric(
        [records], n_workers=2, screen_stride=nt, screen_top=1,
        screen_min_scenarios=1,
    ) as fab:
        heur = fab.identify(d_stream, nt, certified=False)
        heur_order = [s for s, _ in heur.top_k(4)[0]]
        assert heur_order != exhaustive  # the hazard is real
        assert heur_order.index("s1") < exhaustive.index("s1")  # inflated

        cert = fab.identify(d_stream, nt, certified=True)
        # (At S=4 the certified survivors trip the >=S/2 fallback, so the
        # request runs fully exact — which is exactly what certification
        # promises to preserve.)
        assert fab.last_report.screened
        assert [s for s, _ in cert.top_k(4)[0]] == exhaustive
        survivors = [0, 1, 2]  # everything the certified screen kept
        assert np.allclose(
            cert.log_evidence[0, survivors],
            sess.log_evidence()[0, survivors],
            rtol=0, atol=1e-9,
        )


# ----------------------------------------------------------------------
# Degradation, micro-batching, lifecycle
# ----------------------------------------------------------------------
def test_worker_crash_degrades_gracefully(server, serve_bank, serve_streams, small_blocks):
    _, _, d_obs = serve_streams
    ref = server.identify_batch(serve_bank, d_obs, k_slots=6)
    with server.fabric([serve_bank], n_workers=2, screen=False) as fab:
        fab._workers[0].process.kill()
        fab._workers[0].process.join()
        got = fab.identify(d_obs, k_slots=6)
        assert np.array_equal(got.log_evidence, ref.log_evidence)
        assert fab.last_report.degraded
        assert fab.last_report.workers_lost == 1
        assert fab.report()["fabric_workers_alive"] == 1.0
        # The retired worker stays retired; later requests still succeed.
        got2 = fab.identify(d_obs, k_slots=8)
        ref2 = server.identify_batch(serve_bank, d_obs, k_slots=8)
        assert np.array_equal(got2.log_evidence, ref2.log_evidence)


def test_microbatch_queue_tickets(server, serve_bank, serve_streams, small_blocks):
    _, _, d_obs = serve_streams
    ref = server.identify_batch(serve_bank, d_obs[:, :, :5], k_slots=6)
    with server.fabric(
        [serve_bank], n_workers=0, screen=False, max_batch=4
    ) as fab:
        tickets = [fab.submit(d_obs[:, :, j], 6) for j in range(5)]
        # max_batch=4: the first four were auto-flushed, the fifth waits.
        assert all(t.done for t in tickets[:4]) and not tickets[4].done
        for j, t in enumerate(tickets):
            row = t.result()  # resolves the pending one via flush()
            assert row.log_evidence.shape[0] == 1
            assert np.array_equal(row.log_evidence[0], ref.log_evidence[j])
            assert row.map_ids()[0] == ref.map_ids()[j]

        # Forecast tickets ride the same queue.
        fc_ref = server.forecast_partial_batch(d_obs[:, :, :3], k_slots=6)
        fts = [fab.submit(d_obs[:, :, j], 6, op="forecast") for j in range(3)]
        assert fab.flush() == 3
        for t, f in zip(fts, fc_ref):
            assert np.array_equal(t.result().mean, f.mean)

        # A bad horizon is rejected at submit time — it must never join
        # (and poison) a batch other tickets are riding in.
        good = fab.submit(d_obs[:, :, 0], 6)
        with pytest.raises(ValueError):
            fab.submit(d_obs[:, :, 1], 0)
        with pytest.raises(ValueError):
            fab.submit(d_obs[:, :, 1], server.nt + 1)
        # (allclose, not array_equal: `good` flushes as a 1-stream batch,
        # and the bitwise guarantee is per identical batch shape.)
        assert np.allclose(
            good.result().log_evidence[0], ref.log_evidence[0],
            rtol=0, atol=1e-10,
        )


def test_chunked_identify_merges_reports(server, serve_bank, serve_streams, small_blocks):
    """identify() above max_batch aggregates the chunk reports."""
    _, _, d_obs = serve_streams
    with server.fabric(
        [serve_bank], n_workers=2, screen=False, max_batch=4
    ) as fab:
        fab._workers[1].process.kill()
        fab._workers[1].process.join()
        got = fab.identify(d_obs[:, :, :10], k_slots=6)  # 3 chunks
        assert got.n_streams == 10
        rep = fab.last_report
        assert rep.n_streams == 10
        # The loss happened in chunk 1; the merged report must not hide it
        # behind the final chunk (counted as distinct workers, not events).
        assert rep.workers_lost == 1 and rep.degraded
        ref = server.identify_batch(serve_bank, d_obs[:, :, :10], k_slots=6)
        # allclose, not array_equal: chunks advance 4-stream fleets while
        # the reference advances one 10-stream fleet (bitwise equality is
        # guaranteed per identical batch shape only).
        assert np.allclose(got.log_evidence, ref.log_evidence, rtol=0, atol=1e-10)


def test_background_flush_timer(server, serve_bank, serve_streams):
    """max_queue_ms flushes a partial batch on the *injected* clock.

    Virtual time only — no sleeps, no polling, no CI-preemption window:
    the ManualClock fires the deadline synchronously inside ``advance``,
    which exercises the same ``_deadline_flush`` path the wall clock's
    timer thread takes (both serialize through the dispatch lock).
    """
    from repro.util.clock import ManualClock

    _, _, d_obs = serve_streams
    ref = server.identify_batch(serve_bank, d_obs[:, :, :1], k_slots=6)
    clk = ManualClock()
    with server.fabric(
        [serve_bank], n_workers=0, screen=False, max_batch=16,
        max_queue_ms=50.0, clock=clk,
    ) as fab:
        ticket = fab.submit(d_obs[:, :, 0], 6)
        assert not ticket.done and clk.pending() == 1
        clk.advance(0.049)
        assert not ticket.done  # deadline is 50 ms, virtual time says 49
        clk.advance(0.002)
        assert ticket.done, "deadline flush never fired"
        assert np.array_equal(ticket.result().log_evidence[0], ref.log_evidence[0])
        # The timer re-arms for later partial batches.
        t2 = fab.submit(d_obs[:, :, 1], 6)
        assert not t2.done and clk.pending() == 1
        clk.advance(0.050)
        assert t2.done
        # An explicit flush resolves the batch and cancels the deadline.
        t3 = fab.submit(d_obs[:, :, 2], 6)
        fab.flush()
        assert t3.done and clk.pending() == 0
        clk.advance(1.0)  # nothing armed; must be a no-op
    with pytest.raises(ValueError, match="max_queue_ms"):
        server.fabric([serve_bank], n_workers=0, max_queue_ms=0.0)


def test_submit_forecast_mixture_queue_equivalence(
    server, serve_bank, serve_streams, small_blocks
):
    """Mixture tickets == direct fabric mixtures == the flat server path.

    All three fabric ops now ride the one admission path; this pins the
    ``op="forecast_mixture"`` tickets to
    :meth:`ServingFabric.forecast_mixture` (bitwise — same stacked batch)
    and to :meth:`BatchedPhase4Server.forecast_mixture_batch` (machine
    precision), and checks mixed-op queues group correctly.
    """
    _, _, d_obs = serve_streams
    ks = [4, 6, 3, 6]
    with server.fabric([serve_bank], n_workers=2, max_batch=16) as fab:
        tickets = [
            fab.submit(d_obs[:, :, j], k, op="forecast_mixture")
            for j, k in enumerate(ks)
        ]
        assert fab.flush() == len(ks)
        direct = fab.forecast_mixture(d_obs[:, :, : len(ks)], ks)
        flat = server.forecast_mixture_batch(serve_bank, d_obs[:, :, : len(ks)], ks)
        for t, fd, ff in zip(tickets, direct, flat):
            fc = t.result()
            assert np.array_equal(fc.mean, fd.mean)
            assert np.array_equal(fc.covariance, fd.covariance)
            assert np.allclose(fc.mean, ff.mean, rtol=0, atol=1e-10)
            assert np.allclose(fc.covariance, ff.covariance, rtol=0, atol=1e-9)

        # Interleaved ops fuse into per-(bank, op) groups in one flush.
        ti = fab.submit(d_obs[:, :, 0], 5, op="identify")
        tm = fab.submit(d_obs[:, :, 0], 5, op="forecast_mixture")
        fab.flush()
        ref_i = fab.identify(d_obs[:, :, :1], k_slots=5)
        assert np.array_equal(ti.result().log_evidence[0], ref_i.log_evidence[0])
        ref_m = fab.forecast_mixture(d_obs[:, :, :1], 5)[0]
        assert np.array_equal(tm.result().mean, ref_m.mean)
        assert np.array_equal(tm.result().covariance, ref_m.covariance)

        # A QoI-less bank is rejected at admission, not at flush.
        key = fab.attach_bank(serve_bank.clean_records(server.inv.F))
        with pytest.raises(RuntimeError, match="QoI"):
            fab.submit(d_obs[:, :, 0], 4, bank=key, op="forecast_mixture")
        with pytest.raises(ValueError, match="op must be"):
            fab.submit(d_obs[:, :, 0], 4, op="mixture")


def test_respawn_workers_restores_parallelism(
    server, serve_bank, serve_streams, small_blocks
):
    """Respawned workers adopt the existing shards — no rebuild, exact results."""
    _, _, d_obs = serve_streams
    ref = server.identify_batch(serve_bank, d_obs, k_slots=6)
    with server.fabric([serve_bank], n_workers=2, screen=False) as fab:
        assert fab.respawn_workers() == 0  # nothing to do while healthy
        fab._workers[0].process.kill()
        fab._workers[0].process.join()
        got = fab.identify(d_obs, k_slots=6)
        assert fab.last_report.workers_lost == 1
        assert np.array_equal(got.log_evidence, ref.log_evidence)

        assert fab.respawn_workers() == 1
        assert fab.report()["fabric_workers_alive"] == 2.0
        assert fab.report()["fabric_workers_respawned"] == 1.0
        got2 = fab.identify(d_obs, k_slots=8)
        # Parallelism is back: no loss, no degradation, exact results.
        assert fab.last_report.workers_lost == 0
        assert not fab.last_report.degraded
        ref2 = server.identify_batch(serve_bank, d_obs, k_slots=8)
        assert np.array_equal(got2.log_evidence, ref2.log_evidence)

        # A bank attached after the respawn is sharded to the new worker.
        key = fab.attach_bank(serve_bank.clean_records(server.inv.F))
        got3 = fab.identify(d_obs, k_slots=6, bank=key)
        assert np.array_equal(got3.log_evidence, ref.log_evidence)
        assert fab.last_report.workers_lost == 0


def test_shared_budget_between_fabrics_is_namespaced(server, serve_bank):
    """Two fabrics on one budget must not double-book or cross-release."""
    budget = MemoryBudget(total_bytes=1 << 30)
    with server.fabric([serve_bank], n_workers=0, memory_budget=budget) as f1:
        used_one = budget.used
        assert used_one > 0
        with server.fabric([serve_bank], n_workers=0, memory_budget=budget) as f2:
            assert f1.budget_prefix != f2.budget_prefix
            assert budget.used == pytest.approx(2 * used_one, rel=0.01)
        # Closing f2 releases only f2's entries.
        assert budget.used == used_one
    assert budget.used == 0


def test_memory_budget_evicts_coldest_bank(server, serve_twin, serve_bank):
    from repro.serve import ScenarioBank

    c = serve_twin.config
    other = ScenarioBank(
        serve_twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=99
    )
    other.generate(24)
    d_obs = serve_bank.observation_batch(serve_twin.F)[2]

    budget = MemoryBudget(total_bytes=64 << 20)
    with server.fabric([serve_bank], n_workers=0, memory_budget=budget) as fab:
        key_a = fab.banks()[0]
        fab.identify(d_obs, k_slots=4)  # heat bank A
        bank_bytes = budget.nbytes_of(f"{fab.budget_prefix}:bank:{key_a}")
        assert bank_bytes > 0
        # Shrink the ceiling so two banks cannot coexist (the transient
        # clean-records segment counts while a bank attaches).
        mu_bytes = server.nt * server.nd * len(other) * 8
        budget.total_bytes = budget.used + mu_bytes + bank_bytes // 2
        key_b = fab.attach_bank(other)
        assert fab.banks() == [key_b]  # A (cold relative to the ask) evicted
        assert fab.report()["fabric_banks_evicted"] == 1.0
        assert budget.nbytes_of(f"{fab.budget_prefix}:bank:{key_a}") == 0

        # Evicted banks re-attach transparently on next use (and that may
        # evict B in turn under the same pressure).
        res = fab.identify(d_obs, k_slots=4, bank=key_a)
        assert res.n_scenarios == len(serve_bank)
        assert key_a in fab.banks()

    # close() released everything it registered.
    assert budget.used == 0


def test_budget_too_small_raises(server, serve_bank):
    with pytest.raises(RuntimeError, match="memory budget"):
        with server.fabric([serve_bank], n_workers=0, memory_budget=1024):
            pass  # pragma: no cover


def test_fabric_lifecycle_and_validation(server, serve_bank, serve_streams):
    _, _, d_obs = serve_streams
    fab = server.fabric([serve_bank], n_workers=0)
    with pytest.raises(ValueError):
        fab.identify(d_obs[:1], k_slots=2)  # wrong stream shape
    with pytest.raises(ValueError):
        fab.identify(d_obs, k_slots=0)  # horizons start at 1
    with pytest.raises(KeyError):
        fab.identify(d_obs, k_slots=2, bank="nope")
    with pytest.raises(ValueError):
        fab.submit(d_obs[:, :, 0], 2, op="retrodict")
    with pytest.raises(ValueError, match="screen_top"):
        fab.identify(d_obs, k_slots=2, screen=True, screen_top=0)
    fab.close()
    fab.close()  # idempotent
    with pytest.raises(RuntimeError):
        fab.identify(d_obs, k_slots=2)


def test_fabric_requires_config_fields(serve_inversion):
    with pytest.raises(TypeError):
        ServingFabric(serve_inversion, [], not_a_knob=3)


# ----------------------------------------------------------------------
# Adaptive sketch rank
# ----------------------------------------------------------------------
def _top6(log_evidence):
    return np.argsort(-log_evidence, axis=1, kind="stable")[:, :6]


def test_sketch_rank_config_validation(server, serve_bank):
    with pytest.raises(ValueError, match="sketch_rank"):
        server.fabric([serve_bank], n_workers=0, sketch_rank="bogus")
    with pytest.raises(ValueError, match="sketch_mode"):
        server.fabric(
            [serve_bank], n_workers=0, sketch_rank=2, sketch_mode="svd"
        )
    with pytest.raises(ValueError, match="sketch_rank_max"):
        server.fabric(
            [serve_bank], n_workers=0, sketch_rank="auto",
            sketch_rank_max=server.nd + 1,
        )


def test_auto_rank_retunes_and_stays_certified(
    server, serve_bank, serve_streams, small_blocks
):
    """sketch_rank='auto' renegotiates the live rank from screen telemetry
    without ever compromising the certificate: every response during and
    after the retunes carries the exhaustive top-k."""
    _, _, d_obs = serve_streams
    ref = server.identify_batch(serve_bank, d_obs, k_slots=6)
    with server.fabric(
        [serve_bank], n_workers=2, sketch_rank="auto", sketch_mode="pca",
        rank_cooldown=2, screen_min_scenarios=1, max_batch=32,
    ) as fab:
        assert fab.report()["fabric_auto_rank"] == 1.0
        saw_change = False
        for _ in range(12):
            got = fab.identify(d_obs, k_slots=6, certified=True)
            saw_change = saw_change or fab.last_report.rank_changed
            assert np.array_equal(_top6(got.log_evidence), _top6(ref.log_evidence))
        hist = fab.rank_history()
        assert saw_change and len(hist) >= 1
        for ev in hist:
            assert set(ev) == {
                "request", "from_rank", "to_rank",
                "fallback_ewma", "pruned_ewma",
            }
            assert ev["to_rank"] != ev["from_rank"]
        rep = fab.report()
        assert rep["fabric_sketch_retunes"] == float(len(hist))
        assert rep["fabric_sketch_rank"] == hist[-1]["to_rank"]
        assert rep["fabric_sketch_mode_pca"] == 1.0
        # History is a snapshot, not a live reference.
        hist[0]["to_rank"] = -1.0
        assert fab.rank_history()[0]["to_rank"] != -1.0


def test_retune_rank_rebuild_matches_fresh_sketch(
    server, serve_bank, serve_streams, small_blocks
):
    """A forced Gaussian retune rebuilds pmu/slot_psq bitwise equal to a
    fresh flat sketch at the new rank, and shared-memory workers keep
    serving exact results through the renegotiated mappings."""
    _, _, d_obs = serve_streams
    ident = server.scenario_identifier(serve_bank)
    ref = server.identify_batch(serve_bank, d_obs, k_slots=6)
    with server.fabric(
        [serve_bank], n_workers=2, sketch_rank=3, screen_min_scenarios=1,
    ) as fab:
        before = fab.identify(d_obs, k_slots=6, certified=True)
        assert fab.last_report.sketch_rank == 3
        assert np.array_equal(_top6(before.log_evidence), _top6(ref.log_evidence))
        fab._retune_rank(5)
        _, proj, psq = ident.sketch(5, seed=0)
        v = fab._resolve_bank(serve_bank).views
        assert np.array_equal(v["pmu"], proj)
        assert np.array_equal(v["slot_psq"], psq)
        after = fab.identify(d_obs, k_slots=6, certified=True)
        assert fab.last_report.sketch_rank == 5
        assert np.array_equal(_top6(after.log_evidence), _top6(ref.log_evidence))


# ----------------------------------------------------------------------
# Screen telemetry aggregation
# ----------------------------------------------------------------------
def test_screen_telemetry_aggregates_across_microbatches_and_failover(
    server, serve_bank, serve_streams, small_blocks
):
    """The lifetime screen counters (the rank controller's diet and the
    Prometheus surface) accumulate exactly across micro-batched tickets,
    worker loss, and respawn_workers."""
    _, _, d_obs = serve_streams
    S = len(serve_bank)
    expected = {"requests": 0, "fallbacks": 0, "screened": 0, "pruned": 0}

    def note_last(fab):
        rep = fab.last_report
        assert rep.screened
        expected["requests"] += 1
        expected["fallbacks"] += int(rep.screen_fallback)
        expected["screened"] += S
        expected["pruned"] += S - rep.n_candidates

    def check(fab):
        rep = fab.report()
        assert rep["fabric_screened_requests"] == float(expected["requests"])
        assert rep["fabric_screen_fallbacks"] == float(expected["fallbacks"])
        assert rep["fabric_screened_columns"] == float(expected["screened"])
        assert rep["fabric_pruned_columns"] == float(expected["pruned"])
        assert expected["pruned"] <= expected["screened"]

    with server.fabric(
        [serve_bank], n_workers=2, sketch_rank=4, screen_min_scenarios=1,
        max_batch=4,
    ) as fab:
        # Micro-batched tickets: 8 submits at max_batch=4 = two batches.
        tickets = [fab.submit(d_obs[:, :, j], 6) for j in range(4)]
        note_last(fab)
        tickets += [fab.submit(d_obs[:, :, j], 6) for j in range(4, 8)]
        note_last(fab)
        assert all(t.done for t in tickets)
        check(fab)

        # A screen=False request must not touch the screen counters.
        fab.identify(d_obs[:, :, :2], k_slots=6, screen=False)
        check(fab)

        # Counters keep aggregating through worker loss (parent failover
        # still screens) ...
        fab._workers[0].process.kill()
        fab._workers[0].process.join()
        fab.identify(d_obs[:, :, :4], k_slots=6)
        assert fab.last_report.degraded
        assert fab.last_report.workers_lost >= 1
        note_last(fab)
        check(fab)

        # ... and across a respawn.
        assert fab.respawn_workers() == 1
        fab.identify(d_obs[:, :, :4], k_slots=8)
        assert not fab.last_report.degraded
        note_last(fab)
        check(fab)
