"""Streaming scenario identification: exactness, ranking, mixtures.

The contract pinned here: at *every* horizon ``k`` — shared or ragged —
the incrementally accumulated truncated-data log-evidence
``log p(d_k | s)`` matches a from-scratch
``scipy.stats.multivariate_normal`` log-pdf with mean ``mu_{s,k}`` and
covariance ``K_k`` to near machine precision, and everything built on it
(posterior probabilities, rankings, forecast mixtures) is consistent.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import multivariate_normal

from repro.serve import BatchedPhase4Server, ScenarioIdentifier

ATOL = 1e-9  # log-evidences are O(1e2-1e3); observed gap ~1e-13


@pytest.fixture(scope="module")
def server(serve_inversion):
    return BatchedPhase4Server(serve_inversion)


@pytest.fixture(scope="module")
def mu_flat(serve_twin, serve_bank, serve_inversion):
    """Clean records of the whole bank, flattened time-major (Nt*Nd, S)."""
    mu = serve_bank.clean_records(serve_inversion.F)
    return mu.reshape(serve_inversion.nt * serve_inversion.nd, -1)


def _reference_log_evidence(inv, mu_flat, d_flat, k, s):
    """From-scratch truncated Gaussian log-pdf (no nesting, no reuse)."""
    n = k * inv.nd
    rv = multivariate_normal(mean=mu_flat[:n, s], cov=inv.K[:n, :n])
    return rv.logpdf(d_flat[:n].T)


class TestEvidenceEquivalence:
    def test_streaming_matches_scipy_every_horizon(
        self, server, serve_bank, serve_streams, serve_inversion, mu_flat
    ):
        _, _, d_obs = serve_streams
        D = d_obs[:, :, :6]
        d_flat = D.reshape(serve_inversion.nt * serve_inversion.nd, -1)
        session = server.open_identification(serve_bank, D)
        for k in range(1, serve_inversion.nt + 1):
            session.advance(k)
            ev = session.log_evidence()
            assert ev.shape == (6, len(serve_bank))
            for s in (0, 7, len(serve_bank) - 1):
                ref = _reference_log_evidence(
                    serve_inversion, mu_flat, d_flat, k, s
                )
                np.testing.assert_allclose(ev[:, s], ref, rtol=0, atol=ATOL)

    def test_ragged_horizons_match_scipy(
        self, server, serve_bank, serve_streams, serve_inversion, mu_flat
    ):
        _, _, d_obs = serve_streams
        D = d_obs[:, :, :5]
        d_flat = D.reshape(serve_inversion.nt * serve_inversion.nd, -1)
        horizons = np.array([1, 3, 7, 12, 5])
        res = server.identify_batch(serve_bank, D, horizons)
        np.testing.assert_array_equal(res.horizons, horizons)
        for j, k in enumerate(horizons):
            for s in (0, 11, 23):
                ref = _reference_log_evidence(
                    serve_inversion, mu_flat, d_flat[:, [j]], int(k), s
                )
                np.testing.assert_allclose(
                    res.log_evidence[j, s], ref, rtol=0, atol=ATOL
                )

    def test_staged_advance_equals_one_shot(self, server, serve_bank, serve_streams):
        _, _, d_obs = serve_streams
        D = d_obs[:, :, :4]
        staged = server.open_identification(serve_bank, D)
        staged.advance([2, 1, 1, 3]).advance([5, 1, 4, 3]).advance([6, 4, 4, 8])
        oneshot = server.open_identification(serve_bank, D).advance([6, 4, 4, 8])
        np.testing.assert_allclose(
            staged.log_evidence(), oneshot.log_evidence(), rtol=0, atol=1e-10
        )

    def test_adopting_a_mid_stream_fleet_catches_up(
        self, server, serve_bank, serve_streams
    ):
        """open() on a fleet that already absorbed slots folds them in."""
        _, _, d_obs = serve_streams
        D = d_obs[:, :, :3]
        fleet = server.open_fleet(D)
        fleet.advance([4, 2, 6])
        adopted = server.scenario_identifier(serve_bank).open(fleet)
        fresh = server.open_identification(serve_bank, D).advance([4, 2, 6])
        np.testing.assert_allclose(
            adopted.log_evidence(), fresh.log_evidence(), rtol=0, atol=1e-10
        )

    def test_fleet_zero_mean_log_evidence(self, server, serve_streams, serve_inversion):
        """StreamingFleet.log_evidence is the mu = 0 special case."""
        _, _, d_obs = serve_streams
        D = d_obs[:, :, :3]
        fleet = server.open_fleet(D)
        fleet.advance([2, 6, serve_inversion.nt])
        ev = fleet.log_evidence()
        d_flat = D.reshape(serve_inversion.nt * serve_inversion.nd, -1)
        for j, k in enumerate((2, 6, serve_inversion.nt)):
            n = k * serve_inversion.nd
            rv = multivariate_normal(
                mean=np.zeros(n), cov=serve_inversion.K[:n, :n]
            )
            np.testing.assert_allclose(
                ev[j], rv.logpdf(d_flat[:n, j]), rtol=0, atol=ATOL
            )

    def test_logdiag_cum_matches_truncated_logdets(self, serve_inversion):
        cum = serve_inversion.cholesky_logdiag_cum
        assert cum.shape == (serve_inversion.nt + 1,)
        assert cum[0] == 0.0 and not cum.flags["WRITEABLE"]
        assert serve_inversion.cholesky_logdiag_cum is cum  # cached
        for k in (1, 5, serve_inversion.nt):
            n = k * serve_inversion.nd
            _, ref = np.linalg.slogdet(serve_inversion.K[:n, :n])
            np.testing.assert_allclose(2.0 * cum[k], ref, rtol=1e-10, atol=0)


class TestPosteriorRanking:
    def test_probabilities_normalize_and_identify_truth(
        self, server, serve_bank, serve_streams, serve_inversion
    ):
        """Each bank stream's own scenario wins at the full horizon."""
        _, _, d_obs = serve_streams
        res = server.identify_batch(serve_bank, d_obs, serve_inversion.nt)
        np.testing.assert_allclose(
            res.probabilities.sum(axis=1), 1.0, rtol=0, atol=1e-12
        )
        np.testing.assert_array_equal(
            res.map_index(), np.arange(len(serve_bank))
        )
        assert res.map_ids() == serve_bank.ids()
        assert res.n_streams == len(serve_bank)
        assert res.n_scenarios == len(serve_bank)

    def test_evidence_sharpens_with_data(self, server, serve_bank, serve_streams):
        """The true scenario's posterior mass grows from early to full horizon."""
        _, _, d_obs = serve_streams
        D = d_obs[:, :, :8]
        early = server.identify_batch(serve_bank, D, 2)
        late = server.identify_batch(serve_bank, D, server.nt)
        own_early = np.diagonal(early.probabilities[:, :8])
        own_late = np.diagonal(late.probabilities[:, :8])
        assert np.mean(own_late) > np.mean(own_early)

    def test_top_k_is_sorted_and_consistent(self, server, serve_bank, serve_streams):
        _, _, d_obs = serve_streams
        session = server.open_identification(serve_bank, d_obs[:, :, :4])
        session.advance(6)
        ranked = session.top_k(3)
        res = session.posterior()
        assert len(ranked) == 4 and all(len(r) == 3 for r in ranked)
        for j, rows in enumerate(ranked):
            probs = [p for _, p in rows]
            assert probs == sorted(probs, reverse=True)
            assert rows[0][0] == res.map_ids()[j]
        with pytest.raises(ValueError):
            res.top_k(0)

    def test_prior_weights_bias_and_exclude(self, server, serve_bank, serve_streams):
        _, _, d_obs = serve_streams
        S = len(serve_bank)
        session = server.open_identification(serve_bank, d_obs[:, :, :2])
        session.advance(server.nt)
        uniform = session.probabilities()
        w = np.ones(S)
        w[0] = 0.0  # excluding the true scenario of stream 0 re-ranks it
        excl = session.probabilities(prior_weights=w)
        assert excl[0, 0] == 0.0
        np.testing.assert_allclose(excl.sum(axis=1), 1.0, rtol=0, atol=1e-12)
        assert np.argmax(excl[0]) != 0 or uniform[0, 0] == 0.0
        with pytest.raises(ValueError):
            session.probabilities(prior_weights=np.ones(S - 1))
        with pytest.raises(ValueError):
            session.probabilities(prior_weights=np.zeros(S))
        with pytest.raises(ValueError):
            session.probabilities(prior_weights=-w)

    def test_horizon_zero_ranking_is_the_prior(self, server, serve_bank, serve_streams):
        _, _, d_obs = serve_streams
        session = server.open_identification(serve_bank, d_obs[:, :, :2])
        res = session.posterior()  # nothing absorbed yet
        np.testing.assert_array_equal(res.log_evidence, 0.0)
        np.testing.assert_allclose(
            res.probabilities, 1.0 / len(serve_bank), rtol=0, atol=1e-12
        )


class TestForecastMixture:
    def test_mixture_blends_scenario_conditioned_means(
        self, server, serve_bank, serve_streams, serve_inversion
    ):
        _, _, d_obs = serve_streams
        D = d_obs[:, :, :3]
        session = server.open_identification(serve_bank, D)
        session.advance([4, 9, serve_inversion.nt])
        mix = session.forecast_mixture()
        assert len(mix) == 3
        eng = serve_inversion.streaming_state()
        probs = session.probabilities()
        means = session.fleet.forecast_means()
        mu_states = server.scenario_identifier(serve_bank)._Wmu
        qoi = server.scenario_identifier(serve_bank)._qoi
        for j, k in enumerate((4, 9, serve_inversion.nt)):
            n = k * serve_inversion.nd
            Y = eng.geometry_rows(k)
            cond = qoi - Y.T @ mu_states[:n] + means[:, j][:, None]
            ref_mean = cond @ probs[j]
            np.testing.assert_allclose(
                mix[j].mean.reshape(-1), ref_mean, rtol=0, atol=1e-10
            )
            # Moment-matched covariance >= within-scenario covariance (psd
            # between-scenario spread added on the diagonal).
            within = np.diag(eng.covariance_at(int(k)))
            assert np.all(np.diag(mix[j].covariance) >= within - 1e-12)

    def test_mixture_requires_qoi_records(self, serve_inversion, serve_bank, serve_streams):
        _, _, d_obs = serve_streams
        eng = serve_inversion.streaming_state()
        ident = ScenarioIdentifier(
            eng, serve_bank.clean_records(serve_inversion.F)
        )
        session = ident.open(d_obs[:, :, :2]).advance(3)
        with pytest.raises(RuntimeError):
            session.forecast_mixture()


class TestConstructionAndCaching:
    def test_from_bank_equals_manual_construction(
        self, server, serve_bank, serve_streams, serve_inversion
    ):
        _, _, d_obs = serve_streams
        eng = serve_inversion.streaming_state()
        manual = ScenarioIdentifier(
            eng,
            serve_bank.clean_records(serve_inversion.F),
            ids=serve_bank.ids(),
            qoi_records=serve_bank.clean_records(serve_inversion.Fq),
        )
        via_bank = serve_bank.identifier(eng)
        np.testing.assert_array_equal(manual._Wmu, via_bank._Wmu)
        np.testing.assert_array_equal(manual._musq_cum, via_bank._musq_cum)
        assert manual.ids == via_bank.ids
        a = manual.open(d_obs[:, :, :2]).advance(5).log_evidence()
        b = via_bank.open(d_obs[:, :, :2]).advance(5).log_evidence()
        np.testing.assert_array_equal(a, b)

    def test_clean_fleet_export(self, serve_bank, serve_inversion):
        eng = serve_inversion.streaming_state()
        fleet = serve_bank.clean_fleet(eng)
        assert fleet.n_streams == len(serve_bank)
        assert np.all(fleet.horizons == serve_inversion.nt)
        mu = serve_bank.clean_records(serve_inversion.F)
        # Full-horizon states solve L w = mu exactly.
        L = serve_inversion.cholesky_lower
        np.testing.assert_allclose(
            L @ fleet.states,
            mu.reshape(-1, len(serve_bank)),
            rtol=0,
            atol=1e-9,
        )

    def test_server_memoizes_identifier_per_bank(
        self, server, serve_bank, serve_streams
    ):
        a = server.scenario_identifier(serve_bank)
        assert server.scenario_identifier(serve_bank) is a
        assert server.report()["identifier_banks_cached"] >= 1.0
        # Custom priors are session-level overrides: the expensive
        # bank-side state is reused, only the posterior softmax changes.
        _, _, d_obs = serve_streams
        w = np.arange(1.0, len(serve_bank) + 1.0)
        session = server.open_identification(serve_bank, d_obs[:, :, :2], w)
        assert session.identifier is a
        session.advance(3)
        ref = server.open_identification(serve_bank, d_obs[:, :, :2]).advance(3)
        np.testing.assert_allclose(
            session.probabilities(),
            ref.probabilities(prior_weights=w),
            rtol=0,
            atol=1e-13,
        )

    def test_growing_the_bank_invalidates_the_memoized_identifier(
        self, server, serve_twin, serve_inversion
    ):
        """generate() is incremental; new entries must be ranked, not ignored."""
        from repro.serve import ScenarioBank

        c = serve_twin.config
        bank = ScenarioBank(
            serve_twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=31
        )
        bank.generate(3)
        d = bank.clean_records(serve_inversion.F)
        assert server.identify_batch(bank, d, 4).n_scenarios == 3
        bank.generate(6)  # grow in place
        res = server.identify_batch(bank, bank.clean_records(serve_inversion.F), 4)
        assert res.n_scenarios == 6
        assert res.ids == bank.ids()

    def test_identifier_memo_is_lru_bounded(self, server, serve_twin, serve_inversion):
        from repro.serve import ScenarioBank

        c = serve_twin.config
        banks = []
        for s in range(server.IDENTIFIER_CACHE_LIMIT + 2):
            b = ScenarioBank(
                serve_twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=100 + s
            )
            b.generate(1)
            banks.append(b)
            server.scenario_identifier(b)
        assert len(server._identifiers) <= server.IDENTIFIER_CACHE_LIMIT

    def test_validation(self, server, serve_bank, serve_streams, serve_inversion):
        _, _, d_obs = serve_streams
        eng = serve_inversion.streaming_state()
        mu = serve_bank.clean_records(serve_inversion.F)
        with pytest.raises(ValueError):
            ScenarioIdentifier(eng, mu, ids=["only-one"])
        with pytest.raises(ValueError):
            ScenarioIdentifier(eng, mu, qoi_records=np.zeros((3, 3, 2)))
        # A fleet from a different engine cannot be adopted.
        from repro.inference.streaming import IncrementalStreamingPosterior

        other = IncrementalStreamingPosterior(serve_inversion)
        foreign = other.open_fleet(d_obs[:, :, :1])
        with pytest.raises(ValueError):
            server.scenario_identifier(serve_bank).open(foreign)
