"""Gateway journal: crash points, exactly-once replay, corrupt tails.

The journal's contract is positional: a submit record is fsynced
*before* the fabric hears about the request, and a settle record lands
*before* the response future resolves.  That fixes what every crash
window must replay:

* crash between journal-append and fabric-submit → the entry has no
  settle record and the fabric never saw it → ``recover()`` resubmits
  it, exactly once;
* crash between ticket settle and journal-settle → the entry is
  unsettled in the journal (the client may or may not have seen the
  response) → replayed once, reproducing the identical result;
* crash mid-replay → already-replayed entries were re-settled under
  their *original* sequence numbers, so a second ``recover()`` replays
  only the remainder — never a duplicate fabric request;
* a torn or corrupted tail entry is skipped with a ``RuntimeWarning``
  naming the byte offset — recovery of the readable prefix is never
  hostage to the entry the crash destroyed.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import struct
import warnings

import numpy as np
import pytest

from repro.serve import (
    GatewayJournal,
    IngestGateway,
    ServingFabric,
    protocol,
)


@pytest.fixture()
def fab(serve_inversion, serve_bank):
    with ServingFabric(
        serve_inversion, [serve_bank], n_workers=0, screen=False,
        max_batch=4,
    ) as fabric:
        yield fabric


def _submit_record(seq, key, stream, k_slots=6):
    return protocol.JournalSubmit(
        seq=seq, idem_key=key, k_slots=k_slots, op="identify",
        stream=np.ascontiguousarray(stream, dtype=np.float64),
    )


def test_crash_between_append_and_fabric_submit(fab, serve_streams, tmp_path):
    """The submit record exists, the fabric never heard of it: recovery
    resubmits exactly that one entry and nothing else."""
    _, _, d_obs = serve_streams
    path = tmp_path / "gw.journal"

    async def first_life():
        gw = IngestGateway(fab, flush_ms=2.0, journal_path=path)
        ok = await gw.submit(d_obs[:, :, 0], 6, idempotency_key="settled")
        assert ok.status == "ok"
        # Crash point: append lands, fabric.submit never runs.
        gw.journal.append(_submit_record(gw._seq, "lost", d_obs[:, :, 1]))
        gw.close()

    asyncio.run(first_life())
    requests_before = fab.report()["fabric_requests"]
    ref = fab.identify(d_obs[:, :, 1:2], k_slots=6)

    async def second_life():
        gw = IngestGateway(fab, flush_ms=2.0, journal_path=path)
        rep = await gw.recover()
        assert rep.replayed == 1
        assert rep.settled == 1 and rep.restored_keys == 1
        assert rep.responses[0].status == "ok"
        # Bitwise exactly-once: the replay recomputed the lost request
        # only (one fabric request beyond our reference run).
        assert np.array_equal(
            rep.responses[0].result.log_evidence, ref.log_evidence
        )
        assert fab.report()["fabric_requests"] == requests_before + 2
        # Both keys now dedup — neither touches the fabric again.
        r1 = await gw.submit(d_obs[:, :, 0], 6, idempotency_key="settled")
        r2 = await gw.submit(d_obs[:, :, 1], 6, idempotency_key="lost")
        assert r1.deduplicated and r2.deduplicated
        assert fab.report()["fabric_requests"] == requests_before + 2
        gw.close()

    asyncio.run(second_life())


def test_crash_between_settle_and_journal_settle(fab, serve_streams, tmp_path):
    """The result was computed (maybe even delivered) but the settle
    record never landed: the entry replays once and reproduces the
    identical response."""
    _, _, d_obs = serve_streams
    path = tmp_path / "gw.journal"
    first = {}

    async def first_life():
        gw = IngestGateway(fab, flush_ms=2.0, journal_path=path)
        gw._journal_settle = lambda seq, resp: None  # crash point
        resp = await gw.submit(d_obs[:, :, 2], 6, idempotency_key="k")
        assert resp.status == "ok"
        first["evidence"] = resp.result.log_evidence.copy()
        gw.close()

    asyncio.run(first_life())

    async def second_life():
        gw = IngestGateway(fab, flush_ms=2.0, journal_path=path)
        before = fab.report()["fabric_requests"]
        rep = await gw.recover()
        assert rep.replayed == 1 and rep.settled == 0
        assert fab.report()["fabric_requests"] == before + 1
        assert np.array_equal(
            rep.responses[0].result.log_evidence, first["evidence"]
        )
        # The replay journaled its settle: a third life replays nothing.
        gw.close()
        gw3 = IngestGateway(fab, flush_ms=2.0, journal_path=path)
        rep3 = await gw3.recover()
        assert rep3.replayed == 0 and rep3.settled == 1
        assert fab.report()["fabric_requests"] == before + 1
        gw3.close()

    asyncio.run(second_life())


def test_crash_mid_replay_resumes_exactly_once(fab, serve_streams, tmp_path):
    """Replay settles under the *original* seq: if recovery itself dies
    halfway, the next recovery replays only what the first one missed."""
    _, _, d_obs = serve_streams
    path = tmp_path / "gw.journal"
    journal = GatewayJournal(path)
    journal.append(_submit_record(0, "a", d_obs[:, :, 0]))
    journal.append(_submit_record(1, "b", d_obs[:, :, 1]))
    # The crashed first recovery got through seq 0 before dying: its
    # settle (under the original seq) is the last thing it wrote.
    journal.append(protocol.JournalSettle(seq=0, status="ok"))
    journal.close()

    async def resume():
        gw = IngestGateway(fab, flush_ms=2.0, journal_path=path)
        before = fab.report()["fabric_requests"]
        rep = await gw.recover()
        assert rep.replayed == 1  # seq 1 only — seq 0 is already settled
        assert rep.settled == 1 and rep.restored_keys == 1
        assert fab.report()["fabric_requests"] == before + 1
        # New admissions continue above everything in the journal.
        assert gw._seq == 2
        gw.close()

    asyncio.run(resume())


def test_corrupt_tail_is_skipped_loudly(fab, serve_streams, tmp_path):
    """Bit-flipped tail frame: RuntimeWarning + skip, prefix recovered."""
    _, _, d_obs = serve_streams
    path = tmp_path / "gw.journal"
    journal = GatewayJournal(path)
    journal.append(_submit_record(0, "good", d_obs[:, :, 0]))
    journal.append(protocol.JournalSettle(seq=0, status="ok"))
    journal.close()
    with open(path, "ab") as fh:  # torn append: garbage behind a prefix
        fh.write(struct.pack(">I", 16) + b"X" * 16)

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        entries, skipped = GatewayJournal.read(path)
    assert skipped == 1 and len(entries) == 2
    assert any("corrupt" in str(w.message) for w in caught)

    async def recover():
        gw = IngestGateway(fab, flush_ms=2.0, journal_path=path)
        with warnings.catch_warnings(record=True) as caught2:
            warnings.simplefilter("always")
            rep = await gw.recover()
        assert rep.skipped == 1 and rep.replayed == 0
        assert rep.settled == 1 and rep.restored_keys == 1
        assert any(
            issubclass(w.category, RuntimeWarning) for w in caught2
        )
        gw.close()

    asyncio.run(recover())


def test_truncated_tail_is_skipped_loudly(tmp_path, serve_streams):
    """Mid-append crash (length prefix promises more bytes than exist):
    the torn tail is dropped with a warning, earlier entries survive."""
    _, _, d_obs = serve_streams
    path = tmp_path / "gw.journal"
    journal = GatewayJournal(path)
    journal.append(_submit_record(0, "good", d_obs[:, :, 0]))
    journal.close()
    with open(path, "ab") as fh:
        fh.write(struct.pack(">I", 10_000) + b"short")

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        entries, skipped = GatewayJournal.read(path)
    assert skipped == 1
    assert [e.seq for e in entries] == [0]
    assert any("truncated" in str(w.message) for w in caught)
    # A bare truncated length prefix is also survivable.
    with open(path, "wb") as fh:
        fh.write(b"\x00\x01")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        entries, skipped = GatewayJournal.read(path)
    assert entries == [] and skipped == 1
    assert any("length prefix" in str(w.message) for w in caught)


def test_journal_round_trips_streams_bitwise(tmp_path, serve_streams):
    """The codec-framed journal preserves the observation bytes."""
    _, _, d_obs = serve_streams
    path = tmp_path / "gw.journal"
    journal = GatewayJournal(path)
    journal.append(_submit_record(3, "k", d_obs[:, :, 5], k_slots=9))
    journal.close()
    entries, skipped = GatewayJournal.read(path)
    assert skipped == 0 and len(entries) == 1
    (e,) = entries
    assert (e.seq, e.idem_key, e.k_slots, e.op) == (3, "k", 9, "identify")
    assert np.array_equal(e.stream, np.asarray(d_obs[:, :, 5], dtype=float))
    # Missing journal file: clean empty read (first boot, nothing to do).
    assert GatewayJournal.read(tmp_path / "absent.journal") == ([], 0)


def test_journaled_submissions_require_bank_keys(fab, serve_streams,
                                                 serve_bank, tmp_path):
    """A bank *object* cannot be journaled for replay — rejected upfront
    (pass the attach key instead), and no journal entry is written."""
    _, _, d_obs = serve_streams

    async def run():
        gw = IngestGateway(
            fab, flush_ms=2.0, journal_path=tmp_path / "gw.journal"
        )
        with pytest.raises(ValueError, match="bank"):
            await gw.submit(d_obs[:, :, 0], 6, bank=serve_bank)
        gw.close()

    asyncio.run(run())
    assert GatewayJournal.read(tmp_path / "gw.journal") == ([], 0)


def test_recover_requires_a_path(fab):
    async def run():
        gw = IngestGateway(fab, flush_ms=2.0)  # no journal configured
        with pytest.raises(ValueError, match="path"):
            await gw.recover()

    asyncio.run(run())


# ----------------------------------------------------------------------
# Rotation + compaction
# ----------------------------------------------------------------------
def test_rotation_seals_segments_and_read_spans_them(tmp_path, serve_streams):
    """Small rotate_bytes seals segments; read returns every record in
    original order, oldest segment first."""
    _, _, d_obs = serve_streams
    path = tmp_path / "gw.journal"
    journal = GatewayJournal(path, rotate_bytes=1)  # rotate on every append
    for seq in range(4):
        journal.append(_submit_record(seq, f"k{seq}", d_obs[:, :, seq]))
    journal.close()

    segs = GatewayJournal.segments(path)
    assert segs == [str(path) + f".{n}" for n in (1, 2, 3, 4)] + [str(path)]
    entries, skipped = GatewayJournal.read(path)
    assert skipped == 0
    assert [e.seq for e in entries] == [0, 1, 2, 3]


def test_recover_replays_across_rotated_segments(fab, serve_streams, tmp_path):
    """An unsettled submit in an *old* rotated segment is still replayed."""
    _, _, d_obs = serve_streams
    path = tmp_path / "gw.journal"
    journal = GatewayJournal(path, rotate_bytes=1)
    journal.append(_submit_record(0, "old", d_obs[:, :, 0]))  # rotated away
    journal.append(protocol.JournalSettle(seq=1, status="ok"))  # noise
    journal.close()

    async def run():
        gw = IngestGateway(fab, flush_ms=2.0, journal_path=path)
        before = fab.report()["fabric_requests"]
        rep = await gw.recover()
        assert rep.replayed == 1 and rep.responses[0].status == "ok"
        assert fab.report()["fabric_requests"] == before + 1
        assert gw._seq == 2  # continues above everything read
        gw.close()

    asyncio.run(run())


def test_compact_drops_settled_keeps_pending(tmp_path, serve_streams):
    _, _, d_obs = serve_streams
    path = tmp_path / "gw.journal"
    journal = GatewayJournal(path, rotate_bytes=1)
    journal.append(_submit_record(0, "done", d_obs[:, :, 0]))
    journal.append(protocol.JournalSettle(seq=0, status="ok"))
    journal.append(_submit_record(1, "pending", d_obs[:, :, 1]))
    size_before = sum(
        os.path.getsize(s) for s in GatewayJournal.segments(path)
    )
    stats = journal.compact()
    assert stats == {
        "kept": 1, "tombstones": 1, "dropped": 1, "segments_removed": 3
    }
    # Everything collapsed into the single active segment, smaller.
    assert GatewayJournal.segments(path) == [str(path)]
    assert os.path.getsize(path) < size_before

    entries, skipped = GatewayJournal.read(path)
    assert skipped == 0
    kinds = [(type(e).__name__, e.seq) for e in entries]
    assert kinds == [("JournalSubmit", 1), ("JournalSettle", 0)]

    # The journal stays appendable after compaction, and a second
    # compact drops the now-orphaned tombstone (its submit is gone).
    journal.append(protocol.JournalSettle(seq=1, status="ok"))
    stats2 = journal.compact()
    journal.close()
    assert stats2["kept"] == 0 and stats2["tombstones"] == 1
    entries2, _ = GatewayJournal.read(path)
    assert [type(e).__name__ for e in entries2] == ["JournalSettle"]
    j3 = GatewayJournal(path)
    stats3 = j3.compact()
    j3.close()
    assert stats3 == {
        "kept": 0, "tombstones": 0, "dropped": 1, "segments_removed": 0
    }


def test_compact_tombstones_cover_resurfaced_segments(
    fab, serve_streams, tmp_path
):
    """Crash window between rename and unlink: a stale rotated segment
    resurfaces its settled submit, but the compacted file's tombstone
    keeps it settled — recovery never replays a delivered request."""
    _, _, d_obs = serve_streams
    path = tmp_path / "gw.journal"
    journal = GatewayJournal(path, rotate_bytes=1)
    journal.append(_submit_record(0, "done", d_obs[:, :, 0]))
    journal.append(protocol.JournalSettle(seq=0, status="ok"))
    stale = tmp_path / "stale.copy"
    shutil.copy(str(path) + ".1", stale)  # the segment unlink will remove
    journal.compact()
    journal.close()
    shutil.copy(stale, str(path) + ".1")  # simulate the failed unlink

    async def run():
        gw = IngestGateway(fab, flush_ms=2.0, journal_path=path)
        before = fab.report()["fabric_requests"]
        rep = await gw.recover()
        assert rep.replayed == 0 and rep.settled == 1
        assert fab.report()["fabric_requests"] == before
        gw.close()

    asyncio.run(run())


def test_gateway_journal_rotation_end_to_end(fab, serve_streams, tmp_path):
    """Gateway-opened rotating journal: settled traffic compacts to
    nothing replayable; sequence numbers keep climbing."""
    _, _, d_obs = serve_streams
    path = tmp_path / "gw.journal"

    async def run():
        gw = IngestGateway(
            fab, flush_ms=2.0, journal_path=path, journal_rotate_bytes=64
        )
        for i in range(3):
            ok = await gw.submit(d_obs[:, :, i], 6, idempotency_key=f"k{i}")
            assert ok.status == "ok"
        assert len(GatewayJournal.segments(path)) > 1
        stats = gw.journal.compact()
        assert stats["kept"] == 0 and stats["tombstones"] == 3
        gw.close()

        gw2 = IngestGateway(fab, flush_ms=2.0, journal_path=path)
        before = fab.report()["fabric_requests"]
        rep = await gw2.recover()
        assert rep.replayed == 0
        assert fab.report()["fabric_requests"] == before
        assert gw2._seq == 3
        gw2.close()

    asyncio.run(run())


def test_rotate_bytes_validation(tmp_path):
    with pytest.raises(ValueError, match="rotate_bytes"):
        GatewayJournal(tmp_path / "j", rotate_bytes=0)
