"""Teardown safety: idempotent close, crash-during-attach, GC backstop.

Shared-memory segments outlive the process unless something unlinks
them, so the fabric's teardown paths are load-bearing: ``close()`` must
be idempotent (double-close from ``with`` + explicit + ``__del__`` is
normal), a crash *during* ``attach_bank`` must free every segment the
failed attach created (no orphans, no ``resource_tracker`` warnings),
and an abandoned fabric — never closed at all — must still release its
segments when garbage-collected (the ``weakref.finalize`` backstop,
which also covers interpreter exit).
"""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

import repro.serve.fabric as fabric_mod
from repro.serve import ServingFabric
from repro.serve import sketch as sketch_mod


@pytest.fixture()
def small_blocks(monkeypatch):
    monkeypatch.setattr(sketch_mod, "COL_BLOCK", 8)


def _segment_paths(transport):
    """/dev/shm paths of every allocation the transport currently holds."""
    return [
        os.path.join("/dev/shm", h.spec[0])
        for h in transport._handles
        if h.spec[0]
    ]


def test_double_close_is_idempotent(serve_inversion, serve_bank, small_blocks):
    fab = ServingFabric(
        serve_inversion, [serve_bank], n_workers=1, max_batch=4,
    )
    paths = _segment_paths(fab._transport)
    assert paths and all(os.path.exists(p) for p in paths)
    fab.close()
    assert fab._transport._handles == []
    assert not any(os.path.exists(p) for p in paths)
    assert fab.budget.used == 0
    fab.close()  # second close: no-op, no error
    with fab._dispatch_lock:
        pass  # the lock survives close (no torn-down internals)
    with pytest.raises(RuntimeError, match="closed"):
        fab.identify(np.zeros((fab.nt, fab.nd)), k_slots=2)
    fab.__exit__(None, None, None)  # context-manager exit after close: no-op


def test_crash_during_attach_frees_everything(
    serve_inversion, serve_bank, serve_streams, small_blocks, monkeypatch
):
    """A build that explodes mid-attach must not orphan the segments the
    attach created — and the fabric must stay fully usable."""
    fab = ServingFabric(serve_inversion, n_workers=0, max_batch=4)
    try:
        before = list(fab._transport._handles)
        monkeypatch.setattr(
            fabric_mod,
            "_build_shard",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("disk on fire")),
        )
        with pytest.raises(RuntimeError, match="disk on fire"):
            fab.attach_bank(serve_bank)
        # Everything the failed attach allocated was freed again.
        assert fab._transport._handles == before
        assert fab.banks() == []
        assert fab.budget.nbytes_of(f"{fab.budget_prefix}:bank:bank0") == 0
        monkeypatch.undo()
        # The fabric is not poisoned: the same attach now succeeds and serves.
        key = fab.attach_bank(serve_bank)
        _, _, d_obs = serve_streams
        result = fab.identify(d_obs[:, :, :2], k_slots=6, bank=key)
        assert result.probabilities.shape == (2, len(serve_bank))
    finally:
        fab.close()


def test_gc_finalizer_releases_abandoned_fabric(
    serve_inversion, serve_bank, small_blocks
):
    """An un-closed fabric's transport is closed by the GC backstop."""
    fab = ServingFabric(
        serve_inversion, [serve_bank], n_workers=0, max_batch=4,
    )
    transport = fab._transport
    finalizer = fab._finalizer
    paths = _segment_paths(transport)
    assert paths and all(os.path.exists(p) for p in paths)
    assert finalizer.alive
    del fab
    gc.collect()
    assert not finalizer.alive
    assert transport._handles == []
    assert not any(os.path.exists(p) for p in paths)


def test_explicit_close_detaches_finalizer(
    serve_inversion, serve_bank, small_blocks
):
    """A properly closed fabric stands its finalizer down — no
    double-teardown at GC."""
    fab = ServingFabric(
        serve_inversion, [serve_bank], n_workers=0, max_batch=4,
    )
    fab.close()
    assert not fab._finalizer.alive
