"""Prometheus text exposition: format shape and exact round-trips.

``to_prometheus`` feeds the gateway's ``/metrics`` endpoint, so its
output must be scrape-valid (HELP/TYPE comments, legal metric names,
trailing newline) and, for our own tooling, *exactly* invertible:
``parse_prometheus(to_prometheus(c)) == c`` for every float a counter
dict can hold, including the awkward ones (inf, huge, tiny, negative).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.serve.reporting import parse_prometheus, to_prometheus


def test_roundtrip_exact_floats():
    counters = {
        "fabric_requests": 17.0,
        "fabric_shared_bytes": 123456789.0,
        "gateway_rate_limited": 0.0,
        "tiny": 2.0**-40,
        "huge": 1.79e308,
        "negative": -3.5,
        "pi_ish": 3.141592653589793,
        "inf": math.inf,
    }
    assert parse_prometheus(to_prometheus(counters)) == counters


def test_format_shape():
    text = to_prometheus({"b_metric": 2.0, "a_metric": 1.0})
    lines = text.splitlines()
    # sorted metric order, HELP then TYPE then sample, trailing newline
    assert text.endswith("\n")
    assert lines[0].startswith("# HELP a_metric")
    assert lines[1] == "# TYPE a_metric gauge"
    assert lines[2].startswith("a_metric ")
    assert lines[3].startswith("# HELP b_metric")
    assert parse_prometheus(text) == {"a_metric": 1.0, "b_metric": 2.0}


def test_name_sanitization_and_prefix():
    text = to_prometheus({"p50-latency.ms": 4.5, "9lives": 1.0}, prefix="twin_")
    parsed = parse_prometheus(text)
    assert parsed == {"twin_p50_latency_ms": 4.5, "twin_9lives": 1.0}
    # an unprefixed leading digit gets an underscore (legal metric name)
    assert parse_prometheus(to_prometheus({"9lives": 1.0})) == {"_9lives": 1.0}
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        name = line.split(" ")[0]
        assert name[0].isalpha() or name[0] == "_"
        assert all(c.isalnum() or c in "_:" for c in name)


def test_help_text_override():
    text = to_prometheus(
        {"fabric_requests": 1.0},
        help_text={"fabric_requests": "requests served by the fabric"},
    )
    assert "# HELP fabric_requests requests served by the fabric" in text


def test_parse_skips_comments_and_blanks():
    parsed = parse_prometheus(
        "# HELP x y\n# TYPE x gauge\n\n  \nx 2.5\n# trailing comment\n"
    )
    assert parsed == {"x": 2.5}


def test_integer_valued_counters_roundtrip_through_float():
    counters = {"n": float(np.int64(7))}
    assert parse_prometheus(to_prometheus(counters)) == {"n": 7.0}
