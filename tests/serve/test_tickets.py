"""FabricTicket timeout / cancellation / callback semantics.

The async gateway (and any other non-blocking dispatcher) rides three
ticket behaviours that the original flush-on-result design never pinned:
``result(timeout=)`` must *wait* rather than drive the queue and raise
``TimeoutError`` on a stalled stage; a cancelled ticket must never
resolve — not when its batch is flushed, not after the workers it would
have used are killed and respawned; and ``on_done`` callbacks must fire
exactly once, immediately when registered late.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import ServingFabric
from repro.serve import sketch as sketch_mod
from repro.serve.fabric import TicketCancelled


@pytest.fixture()
def small_blocks(monkeypatch):
    monkeypatch.setattr(sketch_mod, "COL_BLOCK", 8)


@pytest.fixture()
def fabric(serve_inversion, serve_bank, small_blocks):
    with ServingFabric(
        serve_inversion, [serve_bank], n_workers=0, max_batch=8,
        screen_min_scenarios=1,
    ) as fab:
        yield fab


def test_result_timeout_on_stalled_stage(fabric, serve_streams):
    """A pending ticket whose batch nothing flushes is a stalled stage:
    ``result(timeout=)`` must wait, then raise — never flush, never hang."""
    _, _, d_obs = serve_streams
    ticket = fabric.submit(d_obs[:, :, 0], k_slots=6)
    with pytest.raises(TimeoutError, match="did not settle"):
        ticket.result(timeout=0.05)
    assert not ticket.done  # the timed-out wait did not drive the queue
    # The default (no timeout) still drives the queue to completion.
    result = ticket.result()
    assert ticket.done
    assert result.probabilities.shape[0] == 1


def test_result_timeout_waits_for_another_dispatcher(
    fabric, serve_bank, serve_streams
):
    """result(timeout=) settles when *another* thread flushes in time."""
    _, _, d_obs = serve_streams
    ticket = fabric.submit(d_obs[:, :, 1], k_slots=6)
    flusher = threading.Timer(0.05, fabric.flush)
    flusher.start()
    try:
        result = ticket.result(timeout=5.0)
    finally:
        flusher.cancel()
    assert result.log_evidence.shape == (1, len(serve_bank))


def test_cancelled_ticket_never_resolves(serve_inversion, serve_bank,
                                         serve_streams, small_blocks):
    """Cancel one ticket of a pending batch, then kill + respawn the
    worker pool and flush: the batch's other tickets resolve, the
    cancelled one never does."""
    _, _, d_obs = serve_streams
    with ServingFabric(
        serve_inversion, [serve_bank], n_workers=1, max_batch=8,
        screen_min_scenarios=1,
    ) as fab:
        doomed = fab.submit(d_obs[:, :, 0], k_slots=6)
        survivor = fab.submit(d_obs[:, :, 1], k_slots=6)
        fired = []
        doomed.on_done(lambda t: fired.append(t))
        assert doomed.cancel() is True
        assert doomed.cancelled and not doomed.done
        assert doomed.cancel() is False  # idempotent
        # Worker churn between cancel and flush must not resurrect it.
        assert fab.kill_worker(0) is True
        assert fab.respawn_workers() == 1
        assert fab.flush() == 1  # only the survivor was pending
        assert survivor.done and not doomed.done
        assert survivor.result().probabilities.shape[0] == 1
        with pytest.raises(TicketCancelled):
            doomed.result()
        with pytest.raises(TicketCancelled):
            doomed.result(timeout=0.01)
        assert fired == []  # a cancelled ticket's callbacks never fire


def test_settled_ticket_cannot_be_cancelled(fabric, serve_streams):
    _, _, d_obs = serve_streams
    ticket = fabric.submit(d_obs[:, :, 2], k_slots=6)
    ticket.result()
    assert ticket.cancel() is False
    assert ticket.done and not ticket.cancelled


def test_on_done_fires_once_and_late_registration_is_immediate(
    fabric, serve_streams
):
    _, _, d_obs = serve_streams
    early, late = [], []
    ticket = fabric.submit(d_obs[:, :, 3], k_slots=6)
    ticket.on_done(lambda t: early.append(t.done))
    ticket.result()
    assert early == [True]
    ticket.on_done(lambda t: late.append(t.done))  # already settled
    assert late == [True]
    fabric.flush()
    assert early == [True]  # no double fire


def test_failed_batch_routes_error_through_ticket(fabric, serve_streams):
    """A poisoned group fails its tickets; result() re-raises, including
    through the waiting (timeout=) path, and on_done still fires."""
    _, _, d_obs = serve_streams
    ticket = fabric.submit(d_obs[:, :, 4], k_slots=6)
    seen = []
    ticket.on_done(lambda t: seen.append(t))
    # Poison the flush: make identify raise for this batch.
    original = fabric.identify
    fabric.identify = lambda *a, **k: (_ for _ in ()).throw(
        RuntimeError("shard exploded")
    )
    try:
        fabric.flush()
    finally:
        fabric.identify = original
    assert ticket.done and seen == [ticket]
    with pytest.raises(RuntimeError, match="shard exploded"):
        ticket.result(timeout=0.01)
