"""Ingest gateway: dedup, rate limiting, metrics — on virtual time.

The admission tier's three behaviours, each pinned deterministically: the
token bucket and TTL cache run on an injected
:class:`~repro.util.clock.ManualClock` (no sleeps — refill and expiry
are driven by ``advance``), dedup is proven by object identity of the
shared results *and* by the fabric's own request counter, and the
``/metrics`` endpoint round-trips through the Prometheus text parser.
"""

from __future__ import annotations

import asyncio
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import ServingFabric
from repro.serve import sketch as sketch_mod
from repro.serve.gateway import IdempotencyCache, IngestGateway, TokenBucket
from repro.serve.reporting import parse_prometheus
from repro.util.clock import ManualClock


@pytest.fixture()
def small_blocks(monkeypatch):
    monkeypatch.setattr(sketch_mod, "COL_BLOCK", 8)


@pytest.fixture()
def fabric(serve_inversion, serve_bank, small_blocks):
    with ServingFabric(
        serve_inversion, [serve_bank], n_workers=0, max_batch=4,
        screen_min_scenarios=1,
    ) as fab:
        yield fab


# ----------------------------------------------------------------------
# Components on virtual time
# ----------------------------------------------------------------------
def test_token_bucket_on_manual_clock():
    clock = ManualClock()
    bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
    assert [bucket.allow() for _ in range(4)] == [True, True, True, False]
    clock.advance(0.5)  # one token refilled at 2/s
    assert bucket.allow() is True
    assert bucket.allow() is False
    clock.advance(10.0)  # refill clamps at burst
    assert [bucket.allow() for _ in range(4)] == [True, True, True, False]


def test_idempotency_cache_ttl_on_manual_clock():
    clock = ManualClock()
    cache = IdempotencyCache(ttl_s=10.0, clock=clock)
    cache.put("k", "v")
    assert cache.get("k") == "v" and len(cache) == 1
    clock.advance(9.0)
    assert cache.get("k") == "v"  # TTL runs from insertion, not access
    clock.advance(1.5)
    assert cache.get("k") is None and len(cache) == 0


def test_bucket_and_cache_validate_args():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0)
    with pytest.raises(ValueError):
        IdempotencyCache(ttl_s=0.0)


# ----------------------------------------------------------------------
# End-to-end admission
# ----------------------------------------------------------------------
def test_dedup_shares_one_computation(fabric, serve_streams):
    """Same key concurrently and again later-within-TTL: one fabric
    request, identical result objects, dedups counted; a *different* key
    computes fresh."""
    _, _, d_obs = serve_streams

    async def run():
        gw = IngestGateway(fabric, flush_ms=1.0)
        first, retry1, retry2 = await asyncio.gather(
            gw.submit(d_obs[:, :, 0], 6, idempotency_key="evt-1"),
            gw.submit(d_obs[:, :, 0], 6, idempotency_key="evt-1"),
            gw.submit(d_obs[:, :, 0], 6, idempotency_key="evt-1"),
        )
        late = await gw.submit(d_obs[:, :, 0], 6, idempotency_key="evt-1")
        other = await gw.submit(d_obs[:, :, 1], 6, idempotency_key="evt-2")
        return gw, first, retry1, retry2, late, other

    gw, first, retry1, retry2, late, other = asyncio.run(run())
    assert all(
        r.status == "ok" for r in (first, retry1, retry2, late, other)
    )
    dedup_flags = sorted(
        r.deduplicated for r in (first, retry1, retry2)
    )
    assert dedup_flags == [False, True, True]
    assert late.deduplicated and not other.deduplicated
    originals = [
        r for r in (first, retry1, retry2) if not r.deduplicated
    ]
    assert all(
        r.result is originals[0].result
        for r in (first, retry1, retry2, late)
    )
    assert other.result is not originals[0].result
    assert gw.counters.deduplicated == 3
    assert gw.counters.accepted == 2  # evt-1 once + evt-2 once
    assert fabric.report()["fabric_requests"] == 2.0


def test_rate_limit_rejects_pre_fabric(fabric, serve_streams):
    """Over-limit requests are rejected before touching the fabric, and
    deduplicated retries never spend a token."""
    _, _, d_obs = serve_streams
    clock = ManualClock()

    async def run():
        gw = IngestGateway(
            fabric, rate_rps=1.0, burst=2, flush_ms=1.0, clock=clock
        )
        a = await gw.submit(d_obs[:, :, 2], 6, idempotency_key="a")
        b = await gw.submit(d_obs[:, :, 3], 6, idempotency_key="b")
        # bucket empty on the (frozen) manual clock: reject
        c = await gw.submit(d_obs[:, :, 4], 6, idempotency_key="c")
        # retry of an in-flight key is free even with an empty bucket
        a2 = await gw.submit(d_obs[:, :, 2], 6, idempotency_key="a")
        clock.advance(1.0)  # one token back
        d = await gw.submit(d_obs[:, :, 4], 6, idempotency_key="d")
        return gw, a, b, c, a2, d

    gw, a, b, c, a2, d = asyncio.run(run())
    assert (a.status, b.status, d.status) == ("ok", "ok", "ok")
    assert c.status == "rejected" and "rate limit" in c.reason
    assert c.result is None
    assert a2.status == "ok" and a2.deduplicated
    assert gw.counters.rate_limited == 1
    # the rejected request never reached the fabric queue
    assert gw.counters.accepted == 3
    assert fabric.report()["fabric_requests"] == 3.0


def test_admission_error_is_a_response_not_an_exception(fabric):
    """A malformed stream surfaces as status="error", shared with riders."""

    async def run():
        gw = IngestGateway(fabric, flush_ms=1.0)
        return gw, await gw.submit(
            np.zeros((2, 2)), 6, idempotency_key="bad"
        )

    gw, resp = asyncio.run(run())
    assert resp.status == "error" and "stream must be" in resp.reason
    assert gw.counters.errors == 1


def test_metrics_text_roundtrip_and_endpoint(fabric, serve_streams):
    """metrics_text parses back exactly, and the /metrics HTTP endpoint
    serves the same exposition (404 elsewhere)."""
    _, _, d_obs = serve_streams

    async def run():
        gw = IngestGateway(fabric, rate_rps=1000.0, flush_ms=1.0)
        await gw.submit(d_obs[:, :, 5], 6, idempotency_key="m-1")
        text = gw.metrics_text()
        server, host, port = await gw.serve_metrics()
        loop = asyncio.get_running_loop()
        body, status404 = await loop.run_in_executor(None, _scrape, host, port)
        server.close()
        await server.wait_closed()
        return gw, text, body, status404

    gw, text, body, status404 = asyncio.run(run())
    # exact float round-trip of the full counter set (gateway + fabric)
    rendered = parse_prometheus(text)
    assert rendered == gw.metrics()
    assert rendered["gateway_requests"] == 1.0
    assert rendered["gateway_accepted"] == 1.0
    assert "fabric_requests" in rendered and "fabric_workers" in rendered
    scraped = parse_prometheus(body)
    assert scraped["gateway_requests"] == 1.0
    assert status404 == 404


def _scrape(host, port):
    with urllib.request.urlopen(f"http://{host}:{port}/metrics") as r:
        body = r.read().decode()
    try:
        urllib.request.urlopen(f"http://{host}:{port}/other")
        status = 200
    except urllib.error.HTTPError as e:
        status = e.code
    return body, status
