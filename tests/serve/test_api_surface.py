"""The public ``repro.serve`` API surface: ``help(repro.serve)`` is law.

The serving layer is the part of the repo operators script against, so its
``__all__`` must be complete (everything documented is importable),
truthful (everything importable-by-name exists and is documented), and
the package docstring must mention every submodule it federates.
"""

from __future__ import annotations

import inspect

import repro.serve as serve


def test_all_names_resolve_and_are_documented():
    assert serve.__all__ == sorted(set(serve.__all__), key=serve.__all__.index)
    for name in serve.__all__:
        obj = getattr(serve, name)  # raises if missing
        doc = inspect.getdoc(obj)
        assert doc, f"public name {name} has no docstring"
        assert len(doc.splitlines()[0]) > 10, f"{name}: one-liner too thin"


def test_submodule_exports_are_reexported():
    """Every submodule ``__all__`` entry is reachable from the package."""
    from repro.serve import (
        cache,
        fabric,
        gateway,
        identify,
        protocol,
        reporting,
        scenarios,
        server,
        shardops,
        sketch,
        transport,
    )

    for mod in (
        cache,
        fabric,
        gateway,
        identify,
        protocol,
        reporting,
        scenarios,
        server,
        shardops,
        sketch,
        transport,
    ):
        for name in mod.__all__:
            assert hasattr(serve, name), (
                f"{mod.__name__}.{name} is public but not exported by repro.serve"
            )
            assert name in serve.__all__, (
                f"{mod.__name__}.{name} missing from repro.serve.__all__"
            )


def test_package_docstring_names_every_submodule():
    doc = serve.__doc__
    for section in (
        "scenarios", "cache", "server", "identify", "sketch", "protocol",
        "shardops", "transport", "fabric", "gateway", "reporting",
    ):
        assert f"``{section}``" in doc, f"package docstring lacks a {section} section"


def test_public_classes_document_their_methods():
    """Public serving classes: every public method carries a docstring."""
    for cls in (
        serve.ScenarioBank,
        serve.OperatorCache,
        serve.BatchedPhase4Server,
        serve.ScenarioIdentifier,
        serve.IdentificationSession,
        serve.ServingFabric,
        serve.FabricTicket,
    ):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} lacks a docstring"
