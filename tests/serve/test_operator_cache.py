"""OperatorCache: hit/miss accounting, geometry keying, disk persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference.noise import NoiseModel
from repro.serve import OperatorCache
from repro.twin import CascadiaTwin, TwinConfig


@pytest.fixture(scope="module")
def small_twin():
    twin = CascadiaTwin(TwinConfig.demo_2d(nx=8, n_slots=8, n_sensors=6, n_qoi=2))
    twin.setup()
    twin.phase1()
    return twin


@pytest.fixture(scope="module")
def small_noise(small_twin):
    scenario, d_clean, noise, d_obs = small_twin.simulate_event()
    return noise, d_obs


def test_miss_then_hit(small_twin, small_noise):
    noise, _ = small_noise
    cache = OperatorCache()
    inv1 = cache.get_or_build(small_twin, noise)
    assert cache.stats.misses == 1 and cache.stats.hits == 0
    inv2 = cache.get_or_build(small_twin, noise)
    assert inv2 is inv1
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert cache.stats.requests == 2
    assert len(cache) == 1
    assert small_twin.inversion is inv1  # hit installs the inversion


def test_noise_change_is_a_different_geometry(small_twin, small_noise):
    noise, _ = small_noise
    cache = OperatorCache()
    cache.get_or_build(small_twin, noise)
    louder = NoiseModel(2.0 * noise.sigma, noise.nt, noise.nd)
    cache.get_or_build(small_twin, louder)
    assert cache.stats.misses == 2
    assert cache.key_for(small_twin, noise) != cache.key_for(small_twin, louder)
    assert len(cache) == 2


def test_identical_geometry_from_independent_twin_hits(small_twin, small_noise):
    noise, _ = small_noise
    cache = OperatorCache()
    cache.get_or_build(small_twin, noise)
    # A second, independently assembled twin with the same config shares the key.
    clone = CascadiaTwin(TwinConfig.demo_2d(nx=8, n_slots=8, n_sensors=6, n_qoi=2))
    clone.setup()
    clone.phase1()
    inv = cache.get_or_build(clone, noise)
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert clone.inversion is inv


def test_disk_persistence_round_trip(tmp_path, small_twin, small_noise):
    noise, d_obs = small_noise
    cache = OperatorCache(directory=tmp_path)
    inv = cache.get_or_build(small_twin, noise)
    key = cache.key_for(small_twin, noise)
    archived = list(tmp_path.glob("*.npz"))
    # Filenames carry the full SHA-256 digest (no truncated 32-char keys).
    assert len(archived) == 1 and archived[0].stem == key

    # A fresh process (fresh cache, same directory) loads instead of building.
    cold = OperatorCache(directory=tmp_path)
    inv2 = cold.get_or_build(small_twin, noise)
    assert cold.stats.disk_hits == 1 and cold.stats.misses == 0
    # The rebuilt operators reproduce the online solves.
    m_ref, fc_ref = inv.infer_and_predict(d_obs)
    m_new, fc_new = inv2.infer_and_predict(d_obs)
    np.testing.assert_allclose(m_new, m_ref, rtol=0, atol=1e-10)
    np.testing.assert_allclose(fc_new.mean, fc_ref.mean, rtol=0, atol=1e-10)
    # And a third lookup in the same process is a memory hit.
    cold.get_or_build(small_twin, noise)
    assert cold.stats.hits == 1

    cold.clear_memory()
    assert len(cold) == 0 and archived[0].exists()
    assert "disk hits" in cold.report()


def test_contains_is_disk_aware(tmp_path, small_twin, small_noise):
    """``key in cache`` must see on-disk archives a ``get_or_build`` would use."""
    noise, _ = small_noise
    warm = OperatorCache(directory=tmp_path)
    warm.get_or_build(small_twin, noise)
    key = warm.key_for(small_twin, noise)
    assert key in warm  # resident

    # A fresh cache over the same directory: nothing resident, but the
    # archive exists — membership must not report a miss the next
    # get_or_build would serve from disk.
    cold = OperatorCache(directory=tmp_path)
    assert len(cold) == 0
    assert key in cold
    assert cold.contains(key, check_disk=True)
    assert not cold.contains(key, check_disk=False)  # memory-only question
    assert "missing" not in cold
    cold.get_or_build(small_twin, noise)
    assert cold.stats.disk_hits == 1
    assert cold.contains(key, check_disk=False)

    # No directory configured: membership is memory-only either way.
    memonly = OperatorCache()
    assert key not in memonly
    assert not memonly.contains(key, check_disk=True)


def test_legacy_truncated_archive_is_still_found(tmp_path, small_twin, small_noise):
    """Archives written under the old 32-char names load transparently."""
    noise, _ = small_noise
    warm = OperatorCache(directory=tmp_path)
    warm.get_or_build(small_twin, noise)
    key = warm.key_for(small_twin, noise)
    (tmp_path / f"{key}.npz").rename(tmp_path / f"{key[:32]}.npz")

    cold = OperatorCache(directory=tmp_path)
    assert key in cold
    cold.get_or_build(small_twin, noise)
    assert cold.stats.disk_hits == 1 and cold.stats.misses == 0


def _fake_archive(directory, name, nbytes, age_days):
    """A dummy .npz-shaped file with a backdated mtime."""
    import os
    import time

    path = directory / f"{name}.npz"
    path.write_bytes(b"\0" * nbytes)
    stamp = time.time() - age_days * 86400.0
    os.utime(path, (stamp, stamp))
    return path


def test_prune_disk_by_age_and_size(tmp_path):
    """LRU pruning honors both criteria; legacy truncated names included."""
    cache = OperatorCache(directory=tmp_path)
    old = _fake_archive(tmp_path, "a" * 64, 1000, age_days=40)
    legacy = _fake_archive(tmp_path, "b" * 32, 1000, age_days=10)  # truncated name
    mid = _fake_archive(tmp_path, "c" * 64, 1000, age_days=5)
    fresh = _fake_archive(tmp_path, "d" * 64, 1000, age_days=0)
    assert cache.disk_nbytes() == 4000

    # Dry run deletes nothing.
    r = cache.prune_disk(max_age_days=30, dry_run=True)
    assert r["files_removed"] == 1 and old.exists()

    # Age criterion drops only the 40-day archive.
    r = cache.prune_disk(max_age_days=30)
    assert r["files_removed"] == 1 and r["bytes_freed"] == 1000
    assert not old.exists() and legacy.exists()

    # Size criterion prunes least-recently-used first: the legacy-named
    # archive is oldest of the survivors and goes before mid/fresh.
    r = cache.prune_disk(max_bytes=2000)
    assert r["files_removed"] == 1 and not legacy.exists()
    assert mid.exists() and fresh.exists()
    assert r["files_kept"] == 2 and r["bytes_kept"] == 2000
    assert cache.disk_nbytes() == 2000

    # No criteria / no directory: clean no-ops.
    assert cache.prune_disk() == {
        "files_removed": 0, "bytes_freed": 0, "files_kept": 2, "bytes_kept": 2000,
    }
    assert OperatorCache().prune_disk(max_bytes=0)["files_kept"] == 0


def test_disk_hit_refreshes_lru_order(tmp_path, small_twin, small_noise):
    """A disk hit is a use: the archive must survive a later LRU prune."""
    import os
    import time

    noise, _ = small_noise
    warm = OperatorCache(directory=tmp_path)
    warm.get_or_build(small_twin, noise)
    key = warm.key_for(small_twin, noise)
    real = tmp_path / f"{key}.npz"
    stamp = time.time() - 20 * 86400.0
    os.utime(real, (stamp, stamp))  # backdate the real archive
    decoy = _fake_archive(tmp_path, "e" * 64, real.stat().st_size, age_days=1)

    # Loading from disk refreshes the real archive's recency...
    cold = OperatorCache(directory=tmp_path)
    cold.get_or_build(small_twin, noise)
    assert cold.stats.disk_hits == 1
    # ...so pruning to one archive's worth keeps it and drops the decoy.
    cold.prune_disk(max_bytes=real.stat().st_size)
    assert real.exists() and not decoy.exists()


def test_prune_disk_cli(tmp_path, capsys):
    from repro.serve import cache as cache_mod

    _fake_archive(tmp_path, "f" * 64, 2048, age_days=50)
    _fake_archive(tmp_path, "g" * 64, 2048, age_days=0)
    cache_mod.main([str(tmp_path), "--max-age-days", "30"])
    assert "removed 1 archive(s)" in capsys.readouterr().out
    assert len(list(tmp_path.glob("*.npz"))) == 1

    # Size suffixes parse; a no-criteria invocation is refused.
    assert cache_mod._parse_size("2K") == 2048
    assert cache_mod._parse_size("1.5M") == int(1.5 * (1 << 20))
    assert cache_mod._parse_size("1G") == 1 << 30
    with pytest.raises(SystemExit):
        cache_mod.main([str(tmp_path)])


def test_fingerprint_requires_phase1():
    twin = CascadiaTwin(TwinConfig.demo_2d(nx=8, n_slots=6, n_sensors=4, n_qoi=2))
    with pytest.raises(RuntimeError):
        twin.geometry_fingerprint()


def test_memory_budget_evicts_coldest_geometry(tmp_path, small_noise):
    """Under a byte ceiling the least-served geometry is evicted first."""
    from repro.util.memory import MemoryBudget

    noise, _ = small_noise
    twins = []
    for nd in (6, 5, 4):  # three distinct geometries
        t = CascadiaTwin(TwinConfig.demo_2d(nx=8, n_slots=8, n_sensors=nd, n_qoi=2))
        t.setup()
        t.phase1()
        twins.append(t)

    budget = MemoryBudget()  # unlimited first: learn real sizes
    cache = OperatorCache(directory=tmp_path, memory_budget=budget)
    noises = []
    for t in twins:
        _, _, n, _ = t.simulate_event()
        noises.append(n)
        cache.get_or_build(t, n)
    sizes = [
        budget.nbytes_of(f"{cache.budget_prefix}:{cache.key_for(t, n)[:16]}")
        for t, n in zip(twins, noises)
    ]
    assert all(s > 0 for s in sizes)
    assert cache.resident_nbytes() == sum(sizes)

    # Heat geometries 0 and 2; geometry 1 stays cold.
    cache.get_or_build(twins[0], noises[0])
    cache.get_or_build(twins[2], noises[2])

    # Now cap the budget just below current usage and admit a *smaller*
    # geometry: evicting the one cold entry must be enough, so the hot
    # geometries stay resident.
    budget.total_bytes = budget.used - 1
    fourth = CascadiaTwin(TwinConfig.demo_2d(nx=8, n_slots=8, n_sensors=3, n_qoi=2))
    fourth.setup()
    fourth.phase1()
    _, _, n4, _ = fourth.simulate_event()
    cache.get_or_build(fourth, n4)
    assert cache.stats.evictions >= 1
    assert cache.contains(cache.key_for(twins[0], noises[0]), check_disk=False)
    assert not cache.contains(cache.key_for(twins[1], noises[1]), check_disk=False)

    # Eviction kept the archive: the next request is a disk hit, not a build.
    before = cache.stats.misses
    cache.get_or_build(twins[1], noises[1])
    assert cache.stats.misses == before
    assert cache.stats.disk_hits >= 1
    assert "evictions" in cache.stats.as_dict()
    assert "eviction" in cache.report()


def test_clear_memory_releases_budget(small_twin, small_noise):
    from repro.util.memory import MemoryBudget

    noise, _ = small_noise
    budget = MemoryBudget(total_bytes=1 << 30)
    cache = OperatorCache(memory_budget=budget)
    cache.get_or_build(small_twin, noise)
    assert budget.used > 0
    cache.clear_memory()
    assert budget.used == 0 and len(cache) == 0


def test_clear_memory_resets_heat(tmp_path, small_twin, small_noise):
    """A full clear is a cold start — stale heat must not outrank new entries."""
    from repro.util.memory import MemoryBudget

    noise, _ = small_noise
    budget = MemoryBudget()
    cache = OperatorCache(directory=tmp_path, memory_budget=budget)
    for _ in range(5):
        cache.get_or_build(small_twin, noise)  # heat it up
    key = cache.key_for(small_twin, noise)
    assert cache._heat[key] == 5
    cache.clear_memory()
    assert cache._heat == {} and cache._last_used == {}
