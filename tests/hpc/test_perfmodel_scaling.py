"""Performance model and the Fig. 5/6 scaling study against paper targets."""

import numpy as np
import pytest

from repro.hpc.machine import (
    ALPS,
    EL_CAPITAN,
    FRONTERA,
    PERLMUTTER,
    table2_weak_series,
)
from repro.hpc.perfmodel import KERNEL_LADDER, NetworkModel, PerformanceModel
from repro.hpc.scaling import ScalingStudy


class TestNetworkModel:
    def test_contention_grows_with_ranks(self):
        nm = NetworkModel(EL_CAPITAN)
        assert nm.contention_factor(256) == 1.0
        assert nm.contention_factor(43_520) > nm.contention_factor(4_352)

    def test_halo_time_components(self):
        nm = NetworkModel(EL_CAPITAN)
        t_small = nm.halo_time(1e6, 12, 256)
        t_big = nm.halo_time(1e8, 12, 256)
        assert t_big > t_small
        # latency floor
        assert nm.halo_time(0, 12, 256) == pytest.approx(12 * 2e-6)

    def test_sync_time(self):
        nm = NetworkModel(EL_CAPITAN)
        assert nm.sync_time(1) == 0.0
        assert nm.sync_time(4096) > nm.sync_time(64)


class TestPerformanceModel:
    def test_el_capitan_base_runtime(self):
        # Fig. 5: ~0.49 s/step at 1.28 B DOF/GPU.
        pm = PerformanceModel(EL_CAPITAN)
        cfg = table2_weak_series(EL_CAPITAN)[0]
        t = pm.time_per_step(cfg)
        assert t == pytest.approx(0.49, rel=0.15)

    def test_kernel_term_dominates_at_weak_scale(self):
        pm = PerformanceModel(EL_CAPITAN)
        cfg = table2_weak_series(EL_CAPITAN)[0]
        b = pm.breakdown(cfg)
        assert b["kernel"] > 0.9 * b["total"]
        assert b["total"] == pytest.approx(
            b["kernel"] + b["halo"] + b["sync"], rel=1e-12
        )

    def test_local_block_is_thin_in_z(self):
        pm = PerformanceModel(EL_CAPITAN)
        bx, by, bz = pm.local_block(4_980_736)
        assert bz <= 16
        assert bx * by * bz == pytest.approx(4_980_736, rel=0.05)

    def test_kernel_ladder_ordering(self):
        # Fig. 7: initial << shared < optimized < fused; MF slower than fused.
        by_name = {k.name: k for k in KERNEL_LADDER}
        assert by_name["Initial PA"].gdofs_el_capitan < 0.2 * by_name["Shared PA"].gdofs_el_capitan
        assert by_name["Shared PA"].gdofs_el_capitan < by_name["Optimized PA"].gdofs_el_capitan
        assert by_name["Optimized PA"].gdofs_el_capitan < by_name["Fused PA"].gdofs_el_capitan
        assert by_name["Fused MF"].gdofs_el_capitan < by_name["Fused PA"].gdofs_el_capitan
        # MF: higher arithmetic intensity, higher FLOP/s, lower DOF/s.
        assert by_name["Fused MF"].arithmetic_intensity() > by_name["Fused PA"].arithmetic_intensity()
        assert by_name["Fused MF"].tflops_at(by_name["Fused MF"].gdofs_el_capitan) > \
            by_name["Fused PA"].tflops_at(by_name["Fused PA"].gdofs_el_capitan)


class TestScalingCurves:
    """The Fig. 5 targets; endpoints are calibrated, intermediates predicted."""

    def test_el_capitan_weak_92(self):
        rows = ScalingStudy(EL_CAPITAN).weak()
        assert rows[0].efficiency == 1.0
        assert rows[-1].efficiency == pytest.approx(0.92, abs=0.015)
        effs = [r.efficiency for r in rows]
        assert all(b <= a + 1e-12 for a, b in zip(effs, effs[1:]))

    def test_el_capitan_strong_79(self):
        rows = ScalingStudy(EL_CAPITAN).strong()
        assert rows[-1].efficiency == pytest.approx(0.79, abs=0.02)
        # ~100x speedup over 128x GPUs (paper: 100.9)
        assert rows[-1].speedup == pytest.approx(100.9, rel=0.05)

    def test_alps_targets(self):
        st = ScalingStudy(ALPS)
        assert st.weak()[-1].efficiency == pytest.approx(0.99, abs=0.01)
        assert st.strong()[-1].efficiency == pytest.approx(0.91, abs=0.015)

    def test_perlmutter_targets(self):
        st = ScalingStudy(PERLMUTTER)
        assert st.weak()[-1].efficiency == pytest.approx(1.0, abs=0.01)
        assert st.strong()[-1].efficiency == pytest.approx(0.92, abs=0.015)

    def test_frontera_targets(self):
        st = ScalingStudy(FRONTERA)
        assert st.weak()[-1].efficiency == pytest.approx(0.95, abs=0.01)
        assert st.strong()[-1].efficiency == pytest.approx(0.70, abs=0.02)

    def test_strong_efficiency_below_weak(self):
        for m in (EL_CAPITAN, ALPS, PERLMUTTER):
            st = ScalingStudy(m)
            assert st.strong()[-1].efficiency < st.weak()[-1].efficiency

    def test_report_renders(self):
        rep = ScalingStudy(EL_CAPITAN).report()
        assert "weak scaling" in rep and "strong scaling" in rep
        assert "ms/step" in rep


class TestFigure6:
    def test_solver_dominates_weak_limit(self):
        # Fig. 6: adjoint solve ~99% of runtime in the weak limit.
        st = ScalingStudy(PERLMUTTER)
        cfg = table2_weak_series(PERLMUTTER)[-1]
        b = st.figure6_breakdown(cfg)
        assert b["solver_share"] > 0.97

    def test_overheads_grow_in_strong_limit(self):
        from repro.hpc.machine import table2_strong_series

        st = ScalingStudy(PERLMUTTER)
        weak_cfg = table2_weak_series(PERLMUTTER)[-1]
        strong_cfg = table2_strong_series(PERLMUTTER)[-1]
        bw = st.figure6_breakdown(weak_cfg)
        bs = st.figure6_breakdown(strong_cfg)
        # solver share shrinks but still dominates (paper: 99% -> 95%)
        assert bs["solver_share"] < bw["solver_share"]
        assert bs["solver_share"] > 0.85

    def test_components_positive(self):
        st = ScalingStudy(EL_CAPITAN)
        cfg = table2_weak_series(EL_CAPITAN)[0]
        b = st.figure6_breakdown(cfg)
        for key in ("Initialization", "Setup", "Adjoint p2o", "I/O"):
            assert b[key] > 0
