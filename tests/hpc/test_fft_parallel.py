"""Distributed FFT matvec: exactness across grids, autotuning."""

import numpy as np
import pytest

from repro.hpc.fft_parallel import (
    DistributedFFTMatvec,
    autotune_grid,
    modeled_matvec_time,
)
from repro.hpc.machine import EL_CAPITAN, PERLMUTTER
from repro.inference.toeplitz import BlockToeplitzOperator


@pytest.fixture(scope="module")
def kernel():
    rng = np.random.default_rng(5)
    return rng.standard_normal((9, 8, 12))


@pytest.fixture(scope="module")
def serial(kernel):
    return BlockToeplitzOperator(kernel)


@pytest.mark.parametrize("grid", [(1, 1), (2, 2), (4, 3), (2, 6), (8, 1), (1, 12)])
def test_matvec_exact_all_grids(kernel, serial, grid, rng):
    dist = DistributedFFTMatvec(kernel, *grid)
    m = rng.standard_normal((9, 12, 2))
    np.testing.assert_allclose(dist.matvec(m), serial.matvec(m), atol=1e-12)


@pytest.mark.parametrize("grid", [(2, 2), (4, 3), (8, 1)])
def test_rmatvec_exact(kernel, serial, grid, rng):
    dist = DistributedFFTMatvec(kernel, *grid)
    d = rng.standard_normal((9, 8))
    np.testing.assert_allclose(dist.rmatvec(d), serial.rmatvec(d), atol=1e-12)


def test_communication_grows_with_columns(kernel, rng):
    m = rng.standard_normal((9, 12))
    b = []
    for pc in (1, 2, 4):
        dist = DistributedFFTMatvec(kernel, 2, pc)
        dist.matvec(m)
        b.append(dist.comm.total_bytes)
    assert b[0] == 0
    assert b[1] < b[2]


def test_single_rank_no_comm(kernel, rng):
    dist = DistributedFFTMatvec(kernel, 1, 1)
    dist.matvec(rng.standard_normal((9, 12)))
    dist.rmatvec(rng.standard_normal((9, 8)))
    assert dist.comm.total_bytes == 0


def test_invalid_grid(kernel):
    with pytest.raises(ValueError):
        DistributedFFTMatvec(kernel, 9, 1)  # more row ranks than rows
    with pytest.raises(ValueError):
        DistributedFFTMatvec(kernel, 0, 1)


class TestAutotune:
    def test_matches_brute_force(self):
        nt, no, ni, nranks = 64, 40, 5000, 16
        best, t_best = autotune_grid(nt, no, ni, nranks, EL_CAPITAN)
        from repro.hpc.partition import factor_grids

        for pr, pc in factor_grids(nranks, 2):
            if pr > no or pc > ni:
                continue
            t = modeled_matvec_time(nt, no, ni, pr, pc, EL_CAPITAN)
            assert t >= t_best - 1e-15

    def test_aspect_ratio_shifts_optimum(self):
        # Tall kernels favor row splits; wide kernels favor column splits.
        (pr_tall, pc_tall), _ = autotune_grid(32, 4096, 64, 16, PERLMUTTER)
        (pr_wide, pc_wide), _ = autotune_grid(32, 64, 4096, 16, PERLMUTTER)
        assert pr_tall >= pr_wide
        assert pc_wide >= pc_tall

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            autotune_grid(4, 2, 2, 64, EL_CAPITAN)

    def test_modeled_time_positive_and_monotone_in_k(self):
        t1 = modeled_matvec_time(64, 100, 1000, 2, 2, EL_CAPITAN, k=1)
        t4 = modeled_matvec_time(64, 100, 1000, 2, 2, EL_CAPITAN, k=4)
        assert 0 < t1 < t4
