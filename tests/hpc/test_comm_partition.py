"""Virtual communicator and block partitioning."""

import numpy as np
import pytest

from repro.hpc.comm import VirtualComm
from repro.hpc.partition import BlockPartition, ProcessGrid, factor_grids


class TestVirtualComm:
    def test_sendrecv_returns_copy(self):
        c = VirtualComm(2)
        a = np.arange(4.0)
        b = c.sendrecv(0, 1, a)
        b[0] = 99.0
        assert a[0] == 0.0

    def test_byte_accounting(self):
        c = VirtualComm(3)
        c.sendrecv(0, 1, np.zeros(10), tag="x")
        c.sendrecv(1, 2, np.zeros(5), tag="y")
        assert c.total_bytes == 15 * 8
        assert c.total_messages == 2
        assert c.bytes_by_tag() == {"x": 80, "y": 40}

    def test_per_rank_and_max(self):
        c = VirtualComm(2)
        c.sendrecv(0, 1, np.zeros(10))
        c.sendrecv(0, 1, np.zeros(10))
        c.sendrecv(1, 0, np.zeros(3))
        sent = c.bytes_sent_by_rank()
        assert sent[0] == 160 and sent[1] == 24
        assert c.max_rank_bytes() == 160

    def test_allreduce_accounting(self):
        c = VirtualComm(4)
        c.allreduce_bytes(100)
        # recursive doubling: 2 rounds x 2 pairs x 2 directions
        assert c.total_messages == 8
        assert c.total_bytes == 800

    def test_invalid_ranks(self):
        c = VirtualComm(2)
        with pytest.raises(ValueError):
            c.sendrecv(0, 5, np.zeros(1))
        with pytest.raises(ValueError):
            VirtualComm(0)

    def test_reset(self):
        c = VirtualComm(2)
        c.sendrecv(0, 1, np.zeros(1))
        c.reset()
        assert c.total_bytes == 0 and c.total_messages == 0


class TestProcessGrid:
    def test_coords_roundtrip(self):
        g = ProcessGrid((3, 4))
        for r in g.ranks():
            assert g.rank_of(g.coords(r)) == r

    def test_neighbors(self):
        g = ProcessGrid((2, 3))
        assert g.neighbor(0, 0, -1) is None
        assert g.neighbor(0, 0, +1) == 3
        assert g.neighbor(0, 1, +1) == 1
        assert g.neighbor(5, 1, +1) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessGrid((0, 2))
        g = ProcessGrid((2,))
        with pytest.raises(ValueError):
            g.coords(5)


class TestBlockPartition:
    def test_balanced_coverage(self):
        p = BlockPartition((7, 5), ProcessGrid((3, 2)))
        seen = np.zeros(35, dtype=int)
        for r in p.grid.ranks():
            seen[p.local_elements(r)] += 1
        np.testing.assert_array_equal(seen, 1)

    def test_balance_within_one_per_axis(self):
        p = BlockPartition((7, 5), ProcessGrid((3, 2)))
        # Balanced split: per-axis local extents differ by at most one.
        for axis in range(2):
            extents = {p.local_shape(r)[axis] for r in p.grid.ranks()}
            assert max(extents) - min(extents) <= 1
        counts = [int(np.prod(p.local_shape(r))) for r in p.grid.ranks()]
        assert p.max_local_elements() == max(counts)

    def test_ranges_contiguous(self):
        p = BlockPartition((10,), ProcessGrid((3,)))
        stops = [p.element_ranges(r)[0] for r in range(3)]
        assert stops[0] == (0, 4) and stops[1] == (4, 7) and stops[2] == (7, 10)

    def test_interface_plane_nodes(self):
        p = BlockPartition((4, 4), ProcessGrid((2, 2)))
        # order-3 plane between x-blocks: (2*3+1) nodes in y
        assert p.interface_plane_nodes(0, axis=0, order=3) == 7

    def test_halo_bytes_interior_vs_corner(self):
        p = BlockPartition((6, 6), ProcessGrid((3, 3)))
        interior = p.halo_bytes_per_apply(4, order=2)
        corner = p.halo_bytes_per_apply(0, order=2)
        assert interior > corner
        assert p.messages_per_apply(4) == 8
        assert p.messages_per_apply(0) == 4

    def test_rejects_overdecomposition(self):
        with pytest.raises(ValueError):
            BlockPartition((2, 2), ProcessGrid((3, 1)))

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            BlockPartition((4, 4), ProcessGrid((2,)))


def test_factor_grids():
    fs = factor_grids(12, 2)
    assert (3, 4) in fs and (12, 1) in fs and (1, 12) in fs
    assert all(a * b == 12 for a, b in fs)
    assert factor_grids(5, 1) == [(5,)]
    fs3 = factor_grids(8, 3)
    assert (2, 2, 2) in fs3
