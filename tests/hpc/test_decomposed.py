"""Decomposed operator: equality with serial, traffic accounting."""

import numpy as np
import pytest

from repro.hpc.decomposed import DecomposedWaveOperator
from repro.hpc.partition import ProcessGrid
from repro.ocean.acoustic_gravity import AcousticGravityOperator


@pytest.mark.parametrize("dims", [(2, 1), (1, 2), (2, 2), (4, 2)])
def test_apply_matches_serial_2d(mesh2d, material, op2d, dims, rng):
    dec = DecomposedWaveOperator(
        mesh2d, order=3, material=material, grid=ProcessGrid(dims)
    )
    X = rng.standard_normal((op2d.nstate, 2))
    Y_serial = op2d.apply(X)
    Y_dec = dec.apply(X)
    np.testing.assert_allclose(
        Y_dec, Y_serial, atol=1e-12 * np.abs(Y_serial).max()
    )


def test_apply_matches_serial_3d(mesh3d, material, op3d, rng):
    dec = DecomposedWaveOperator(
        mesh3d, order=2, material=material, grid=ProcessGrid((2, 2, 2))
    )
    X = rng.standard_normal((op3d.nstate, 1))
    np.testing.assert_allclose(
        dec.apply(X), op3d.apply(X), atol=1e-12 * np.abs(op3d.apply(X)).max()
    )


def test_measured_bytes_match_analytic(mesh2d, material, rng):
    for dims in [(2, 2), (4, 1)]:
        dec = DecomposedWaveOperator(
            mesh2d, order=3, material=material, grid=ProcessGrid(dims)
        )
        dec.comm.reset()
        X = rng.standard_normal((dec.nstate, 3))
        dec.apply(X)
        assert dec.measured_interface_bytes() == dec.analytic_interface_bytes(k=3)


def test_forcing_matches_serial(mesh2d, material, op2d, rng):
    dec = DecomposedWaveOperator(
        mesh2d, order=3, material=material, grid=ProcessGrid((2, 2))
    )
    m = rng.standard_normal(op2d.n_parameters)
    F_serial = op2d.forcing(m)
    F_dec = dec.forcing(m)
    np.testing.assert_allclose(
        F_dec, F_serial, atol=1e-13 * max(np.abs(F_serial).max(), 1.0)
    )


def test_distribute_collect_roundtrip(mesh2d, material, op2d, rng):
    dec = DecomposedWaveOperator(
        mesh2d, order=3, material=material, grid=ProcessGrid((2, 2))
    )
    X = rng.standard_normal((op2d.nstate, 2))
    locs = dec.distribute(X)
    assert dec.interface_consistency(locs) == 0.0
    np.testing.assert_array_equal(dec.collect(locs), X)


def test_repeated_apply_equals_serial_propagation(mesh2d, material, op2d, rng):
    # several L applications (an RK4 ingredient) stay in lockstep
    dec = DecomposedWaveOperator(
        mesh2d, order=3, material=material, grid=ProcessGrid((2, 1))
    )
    X = rng.standard_normal((op2d.nstate, 1))
    Xs, Xd = X.copy(), X.copy()
    for _ in range(4):
        Xs = op2d.apply(Xs)
        Xd = dec.apply(Xd)
    np.testing.assert_allclose(Xd, Xs, atol=1e-11 * np.abs(Xs).max())


def test_boundary_ops_only_on_global_sides(mesh2d, material):
    dec = DecomposedWaveOperator(
        mesh2d, order=3, material=material, grid=ProcessGrid((2, 2))
    )
    # rank (0,0): touches west + bottom, not east/surface
    lop = dec.local_ops[0]
    assert lop.R is not None  # bottom-owning
    assert lop.surface_op is None  # interior-z top
    assert lop.absorbing_sides == ("west",)
    # rank (1,1): east + surface
    top_right = dec.grid.rank_of((1, 1))
    lop2 = dec.local_ops[top_right]
    assert lop2.R is None
    assert lop2.surface_op is not None
    assert lop2.absorbing_sides == ("east",)


def test_grid_dim_mismatch(mesh2d, material):
    with pytest.raises(ValueError):
        DecomposedWaveOperator(
            mesh2d, order=3, material=material, grid=ProcessGrid((2, 2, 2))
        )
