"""Machine specs and Table II configurations."""

import pytest

from repro.hpc.machine import (
    ALL_MACHINES,
    ALPS,
    DOF_PER_ELEMENT,
    EL_CAPITAN,
    FRONTERA,
    PERLMUTTER,
    table2_strong_series,
    table2_weak_series,
)


class TestSpecs:
    def test_el_capitan_full_system(self):
        assert EL_CAPITAN.total_gpus == 44_544
        # 2.73 EFLOP/s peak (Section VI-A)
        assert EL_CAPITAN.peak_eflops == pytest.approx(2.73, rel=0.01)

    def test_alps_peak(self):
        # 574.8 PFLOP/s
        assert ALPS.peak_eflops == pytest.approx(0.5748, rel=0.01)
        assert ALPS.total_gpus == 10_752

    def test_perlmutter_peak(self):
        # 59.6 PFLOP/s
        assert PERLMUTTER.peak_eflops == pytest.approx(0.0596, rel=0.01)

    def test_all_machines_positive(self):
        for m in ALL_MACHINES:
            assert m.solver_gdofs > 0 and m.link_beta_gbs > 0


class TestTable2:
    def test_el_capitan_endpoints(self):
        w = table2_weak_series(EL_CAPITAN)
        assert w[0].gpus == 340 and w[0].grid == (5, 17, 4)
        assert w[0].elements == 1_693_450_240
        assert w[-1].gpus == 43_520
        assert w[-1].elements == 216_761_630_720
        assert w[-1].grid == (80, 136, 4)
        # 55.5 T DOF at the top
        assert w[-1].dof == pytest.approx(55.5e12, rel=0.01)
        # fixed elements/GPU across the weak series
        assert len({c.elements_per_gpu for c in w}) == 1
        assert w[0].elements_per_gpu == 4_980_736

    def test_alps_endpoints(self):
        w = table2_weak_series(ALPS)
        assert w[0].gpus == 144 and w[-1].gpus == 9_216
        assert w[0].elements == 566_231_040
        assert w[0].elements_per_gpu == 3_932_160
        # ~1.01 B DOF per GPU
        assert w[-1].dof_per_gpu == pytest.approx(1.01e9, rel=0.01)

    def test_perlmutter_endpoints(self):
        w = table2_weak_series(PERLMUTTER)
        assert w[0].gpus == 188 and w[-1].gpus == 6_016
        assert w[0].elements_per_gpu == 1_572_864
        # 403 M DOF/GPU
        assert w[-1].dof_per_gpu == pytest.approx(403e6, rel=0.01)

    def test_strong_series_fixed_problem(self):
        s = table2_strong_series(EL_CAPITAN)
        assert len({c.elements for c in s}) == 1
        # 38,912 elements/GPU at the strong-scaling limit (Table II)
        assert s[-1].elements_per_gpu == 38_912

    def test_frontera_strong_base_64_nodes(self):
        s = table2_strong_series(FRONTERA)
        assert s[0].nodes == 64 and s[-1].nodes == 8_192
        assert s[-1].gpus // s[0].gpus == 128

    def test_dof_per_element_matches_paper(self):
        # order-4 H1 pressure + 3 x order-3 L2 velocity = 256 DOF/element
        assert DOF_PER_ELEMENT == 4**3 + 3 * 4**3
