#!/usr/bin/env python
"""Fail on broken intra-repo markdown links, including ``#anchor`` fragments.

Scans every ``*.md`` file in the repository for inline links and
reference-style definitions, and validates two things:

* **Paths**: every *relative-path* target (external ``scheme://`` URLs
  and ``mailto:`` are skipped) resolves against the file's directory.
* **Anchors**: every ``#fragment`` — same-file (``#section``) or
  cross-file (``other.md#section``) — matches a heading slug in the
  target markdown file, using GitHub's slug rules (lowercase; drop
  punctuation; spaces to hyphens; ``-1``/``-2`` suffixes for duplicate
  headings; headings inside fenced code blocks don't count).

Exits non-zero listing every broken target.  Run by the CI docs job::

    python tools/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline [text](target) plus reference-style "[label]: target" definitions.
_INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^\s*(```|~~~)")
_MD_LINK_BITS = re.compile(r"!?\[([^\]]*)\]\([^)]*\)")  # [text](url) -> text
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}


def _targets(text: str):
    seen = set()
    for match in _INLINE.finditer(text):
        yield match.group(1)
        seen.add(match.group(1))
    for match in _REFDEF.finditer(text):
        if match.group(1) not in seen:
            yield match.group(1)


def _is_checkable(target: str) -> bool:
    if target.startswith("mailto:"):
        return False
    if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*://", target):
        return False
    return True


def slugify(heading: str) -> str:
    """GitHub's anchor slug for one heading's text (pre-deduplication).

    Lowercase; markdown emphasis/code/link syntax reduced to its text;
    everything except alphanumerics, spaces, hyphens, and underscores
    dropped; spaces become hyphens.
    """
    text = _MD_LINK_BITS.sub(r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("~~", "")
    text = text.strip().lower()
    out = []
    for ch in text:
        if ch.isalnum() or ch in "_-":
            out.append(ch)
        elif ch in " ":
            out.append("-")
        # everything else (punctuation, colons, dots, slashes) is dropped
    return "".join(out)


def anchors(text: str) -> set:
    """All valid anchor slugs of one markdown document.

    Headings inside fenced code blocks are not anchors; duplicate
    heading slugs get ``-1``, ``-2``, ... suffixes in document order
    (GitHub's deduplication rule) — every variant is a valid anchor.
    """
    slugs: set = set()
    counts: dict = {}
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING.match(line)
        if not m:
            continue
        slug = slugify(m.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check(root: Path):
    """Return ``[(md_file, target, reason), ...]`` for every broken link."""
    broken = []
    anchor_cache: dict = {}

    def _anchors_of(path: Path) -> set:
        if path not in anchor_cache:
            anchor_cache[path] = anchors(path.read_text(encoding="utf-8"))
        return anchor_cache[path]

    for md in sorted(root.rglob("*.md")):
        if any(part in _SKIP_DIRS for part in md.parts):
            continue
        text = md.read_text(encoding="utf-8")
        for target in _targets(text):
            if not _is_checkable(target):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (md.parent / path_part).resolve()
                if not resolved.exists():
                    broken.append((md.relative_to(root), target, "missing file"))
                    continue
            else:
                resolved = md  # pure "#fragment": same-document anchor
            if fragment and resolved.suffix == ".md":
                if fragment.lower() not in _anchors_of(resolved):
                    broken.append(
                        (md.relative_to(root), target, "missing anchor")
                    )
    return broken


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    broken = check(root.resolve())
    if broken:
        print(f"{len(broken)} broken intra-repo markdown link(s):")
        for md, target, reason in broken:
            print(f"  {md}: {target} ({reason})")
        return 1
    print("all intra-repo markdown links and anchors resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
