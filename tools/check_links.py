#!/usr/bin/env python
"""Fail on broken intra-repo markdown links.

Scans every ``*.md`` file in the repository for inline links and
reference-style definitions whose targets are *relative paths* (external
``scheme://`` URLs and pure ``#fragment`` anchors are skipped), resolves
each against the file's directory, and exits non-zero listing every target
that does not exist.  Run by the CI docs job::

    python tools/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline [text](target) plus reference-style "[label]: target" definitions.
_INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}


def _targets(text: str):
    seen = set()
    for match in _INLINE.finditer(text):
        yield match.group(1)
        seen.add(match.group(1))
    for match in _REFDEF.finditer(text):
        if match.group(1) not in seen:
            yield match.group(1)


def _is_relative(target: str) -> bool:
    if target.startswith("#") or target.startswith("mailto:"):
        return False
    if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*://", target):
        return False
    return True


def check(root: Path):
    """Return ``[(md_file, target), ...]`` for every broken relative link."""
    broken = []
    for md in sorted(root.rglob("*.md")):
        if any(part in _SKIP_DIRS for part in md.parts):
            continue
        for target in _targets(md.read_text(encoding="utf-8")):
            if not _is_relative(target):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                broken.append((md.relative_to(root), target))
    return broken


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    broken = check(root.resolve())
    if broken:
        print(f"{len(broken)} broken intra-repo markdown link(s):")
        for md, target in broken:
            print(f"  {md}: {target}")
        return 1
    print("all intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
