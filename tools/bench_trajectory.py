#!/usr/bin/env python
"""Aggregate ``benchmarks/reports/BENCH_*.json`` into one trajectory file.

Each bench smoke emits a machine-readable ``BENCH_<name>.json``.  This
tool folds them into a single ``BENCH_trajectory.json`` so the
performance trajectory (throughput, certified fallback rates, sketch
modes/ranks, speedups) can be tracked across PRs from one artifact
instead of five, and compares the fresh aggregate against the previous
trajectory file when one exists:

* **Correctness flags** (``certified_topk_identical``,
  ``evidence_bitwise_identical``, ``pca_tightens``, ...) regressing from
  true to false are always reported.
* **Higher-is-better metrics** (``throughput_*``, ``speedup``,
  ``pruned_fraction``, ...) dropping by more than ``--tolerance``
  (default 15%) are reported.

Warnings are *soft* by default — they print, they land in the
``warnings`` section of the output, but the exit code stays 0 (shared CI
runners make timing numbers noisy, and ``--tiny`` throughput is noise by
design).  ``--strict`` turns correctness regressions (only) into a
non-zero exit.  Run by the CI bench steps::

    python tools/bench_trajectory.py [--reports DIR] [--tolerance 0.15]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

OUTPUT_NAME = "BENCH_trajectory.json"

# Leaf keys whose value is a correctness claim: a true -> false flip is a
# regression no matter how noisy the runner is.
CORRECTNESS_FLAGS = {
    "certified_topk_identical",
    "deterministic_across_reruns",
    "evidence_bitwise_identical",
    "pca_prunes_no_worse",
    "pca_tightens",
}

# Leaf keys where bigger is better; drops beyond the tolerance warn.
HIGHER_IS_BETTER_PREFIXES = (
    "throughput",
    "speedup",
    "sustained_rps",
    "sweeps_per_sec",
    "pruned_fraction",
    "width_tightening",
    "auto_vs_static",
    "fallback_improvement",
)


def flatten(payload, prefix=""):
    """Flatten nested dicts to ``a.b.c`` keys; lists are kept verbatim."""
    flat = {}
    for key, value in payload.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten(value, f"{dotted}."))
        else:
            flat[dotted] = value
    return flat


def _as_number(value):
    """Numeric view of a metric; the ``"inf"`` sentinel counts as inf."""
    if value == "inf":
        return float("inf")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _is_higher_better(dotted: str) -> bool:
    leaf = dotted.rsplit(".", 1)[-1]
    return leaf.startswith(HIGHER_IS_BETTER_PREFIXES)


def aggregate(report_dir: Path) -> dict:
    """Fold every ``BENCH_*.json`` (minus the trajectory itself) together."""
    benches = {}
    for path in sorted(report_dir.glob("BENCH_*.json")):
        if path.name == OUTPUT_NAME:
            continue
        name = path.stem[len("BENCH_"):]
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            benches[name] = {"error": f"unreadable: {exc}"}
            continue
        flat = flatten(payload)
        benches[name] = {
            "metrics": {
                k: v for k, v in flat.items() if _as_number(v) is not None
            },
            "correctness": {
                k: v
                for k, v in flat.items()
                if k.rsplit(".", 1)[-1] in CORRECTNESS_FLAGS
            },
        }
    return benches


def compare(benches: dict, previous: dict, tolerance: float):
    """Soft-regression warnings of ``benches`` vs a prior trajectory."""
    warnings = []
    for name, entry in benches.items():
        prior = previous.get("benches", {}).get(name, {})
        for key, old in prior.get("correctness", {}).items():
            new = entry.get("correctness", {}).get(key)
            if old is True and new is False:
                warnings.append(
                    {
                        "bench": name,
                        "metric": key,
                        "kind": "correctness",
                        "previous": True,
                        "current": False,
                    }
                )
        for key, old in prior.get("metrics", {}).items():
            if not _is_higher_better(key):
                continue
            old_n = _as_number(old)
            new_n = _as_number(entry.get("metrics", {}).get(key))
            if old_n is None or new_n is None or old_n <= 0:
                continue
            if new_n < old_n * (1.0 - tolerance):
                warnings.append(
                    {
                        "bench": name,
                        "metric": key,
                        "kind": "perf",
                        "previous": old_n,
                        "current": new_n,
                        "ratio": new_n / old_n,
                    }
                )
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reports",
        type=Path,
        default=Path(__file__).parent.parent / "benchmarks" / "reports",
        help="directory holding BENCH_*.json (default: benchmarks/reports)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=f"output path (default: <reports>/{OUTPUT_NAME})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="fractional drop of a higher-is-better metric that warns",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on correctness regressions (perf stays soft)",
    )
    args = parser.parse_args(argv)

    report_dir = args.reports
    out_path = args.out or report_dir / OUTPUT_NAME
    benches = aggregate(report_dir)
    if not benches:
        print(f"no BENCH_*.json found under {report_dir}", file=sys.stderr)
        return 1

    previous = {}
    if out_path.exists():
        try:
            previous = json.loads(out_path.read_text())
        except (OSError, json.JSONDecodeError):
            previous = {}  # a torn previous file never blocks the refresh
    warnings = compare(benches, previous, args.tolerance)

    trajectory = {
        "benches": benches,
        "tolerance": args.tolerance,
        "warnings": warnings,
    }
    out_path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")

    n_flags = sum(len(b.get("correctness", {})) for b in benches.values())
    print(
        f"aggregated {len(benches)} bench report(s), "
        f"{n_flags} correctness flag(s) -> {out_path}"
    )
    hard = 0
    for w in warnings:
        if w["kind"] == "correctness":
            hard += 1
            print(
                f"  REGRESSION {w['bench']}:{w['metric']} flipped true -> false"
            )
        else:
            print(
                f"  warning: {w['bench']}:{w['metric']} "
                f"{w['previous']:.4g} -> {w['current']:.4g} "
                f"({w['ratio']:.0%} of previous)"
            )
    if not warnings:
        print("no regressions vs previous trajectory"
              if previous else "no previous trajectory to compare against")
    return 1 if (args.strict and hard) else 0


if __name__ == "__main__":
    raise SystemExit(main())
