#!/usr/bin/env python
"""The Fig. 5 / Table II scaling study through the performance model.

Prints weak- and strong-scaling curves for El Capitan, Alps, Perlmutter,
and Frontera from the calibrated roofline + alpha-beta-contention model,
next to the paper's reported endpoint efficiencies; then validates the
model's communication inputs by *executing* the domain-decomposed operator
on virtual ranks and comparing measured message bytes against the analytic
halo predictions.

Usage::

    python examples/scaling_study.py
"""

import numpy as np

from repro.fem.mesh import StructuredMesh
from repro.hpc import (
    ALL_MACHINES,
    EL_CAPITAN,
    DecomposedWaveOperator,
    ProcessGrid,
    ScalingStudy,
)
from repro.hpc.machine import table2_weak_series
from repro.ocean import AcousticGravityOperator, SeawaterMaterial

PAPER_TARGETS = {
    "El Capitan": ("92% weak @ 43,520 GPUs", "79% strong @ 128x"),
    "Alps": ("99% weak @ 9,216 GPUs", "91% strong @ 64x"),
    "Perlmutter": ("1.00 weak @ 6,016 GPUs", "92% strong @ 32x"),
    "Frontera": ("95% weak @ 8,192 nodes", "70% strong @ 128x"),
}


def main() -> None:
    for machine in ALL_MACHINES:
        st = ScalingStudy(machine)
        print(st.report())
        w, s = PAPER_TARGETS[machine.name]
        print(f"  paper: {w}; {s}\n")

    big = table2_weak_series(EL_CAPITAN)[-1]
    print(
        f"largest modeled run: {big.dof / 1e12:.1f} T DOF on {big.gpus:,} GPUs "
        "(paper: 55.5 T DOF, the largest unstructured-mesh FE computation reported)\n"
    )

    print("validating communication inputs with an executed decomposition:")
    mat = SeawaterMaterial.nondimensional()
    mesh = StructuredMesh.ocean(
        [np.linspace(0, 4, 13)], nz=4, depth=lambda x: 0.9 + 0.1 * np.sin(x)
    )
    serial = AcousticGravityOperator(mesh, order=3, material=mat)
    rng = np.random.default_rng(0)
    X = rng.standard_normal((serial.nstate, 1))
    Y_ref = serial.apply(X)
    for dims in [(2, 2), (4, 2), (6, 4)]:
        dec = DecomposedWaveOperator(
            mesh, order=3, material=mat, grid=ProcessGrid(dims)
        )
        dec.comm.reset()
        Y = dec.apply(X)
        err = np.abs(Y - Y_ref).max() / np.abs(Y_ref).max()
        print(
            f"  grid {dims}: {dec.grid.size:>2d} virtual ranks; "
            f"max rel err vs serial {err:.2e}; interface bytes measured "
            f"{dec.measured_interface_bytes():,} == predicted "
            f"{dec.analytic_interface_bytes():,}"
        )


if __name__ == "__main__":
    main()
