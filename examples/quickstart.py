#!/usr/bin/env python
"""Quickstart: the full digital-twin pipeline in ~30 lines of API.

Builds a small 2D twin, runs the offline phases (Fig. 2 of the paper),
simulates a margin-wide rupture, and performs the real-time inversion and
wave-height forecast.  Runs in a few seconds on a laptop.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.twin import CascadiaTwin, TwinConfig, decide_alert


def main() -> None:
    # 1. Configure a small 2D (cross-margin slice) twin.
    config = TwinConfig.demo_2d(n_sensors=12, n_qoi=3, n_slots=16)
    twin = CascadiaTwin(config)

    # 2. Offline: assemble the solver and run Phases 1-3.
    twin.setup()           # mesh, operator, sensors (Table I: Init/Setup)
    twin.phase1()          # one adjoint wave solve per sensor/QoI -> F, Fq
    scenario, d_clean, noise, d_obs = twin.simulate_event()
    twin.phase23(noise)    # data-space Hessian K, Cholesky, Q, QoI covariance

    # 3. Online (Phase 4): invert the noisy pressure records in real time.
    result = twin.invert(scenario, d_clean, d_obs)

    print("problem dimensions:", {k: int(v) for k, v in twin.problem_summary().items()})
    print(f"parameter relative error:     {result.parameter_error():.3f}")
    print(f"displacement relative error:  {result.displacement_error():.3f}")
    print(f"forecast relative error:      {result.forecast_error():.3f}")
    print(f"95% credible-interval coverage of the true QoI: {result.coverage():.2f}")
    print()
    print(twin.table3_report())
    print()

    # 4. Early warning decision from the probabilistic forecast.
    peak = float(np.abs(result.forecast.mean).max())
    decision = decide_alert(
        result.forecast,
        advisory=0.1 * peak, watch=0.3 * peak, warning=0.6 * peak,
    )
    print("early-warning decision:")
    print(decision.summary())


if __name__ == "__main__":
    main()
