#!/usr/bin/env python
"""The HPC-center -> warning-center deployment split (paper Section VIII).

"If only surface wave heights at selected locations are of interest, the
forecasting step reduces to a precomputed, small, dense matrix-vector
product — enabling deployment entirely without any HPC infrastructure."

This example plays both roles: the *HPC center* runs the offline phases
and ships one ``.npz`` archive; the *warning center* (which never touches
a PDE) loads it, receives streaming sensor data, and issues forecasts and
alerts with exact uncertainties.

Usage::

    python examples/operator_archive_workflow.py
"""

import pathlib
import tempfile
import time

import numpy as np

from repro.twin import (
    CascadiaTwin,
    StreamingInverter,
    TwinConfig,
    decide_alert,
    load_twin_archive,
    rebuild_inversion,
    save_twin_archive,
)


def hpc_center(archive_path: pathlib.Path) -> tuple:
    """Offline role: assemble the twin, run Phases 1-3, ship the archive."""
    print("[HPC center] assembling twin and running offline phases ...")
    config = TwinConfig.demo_2d(nx=16, n_slots=20, n_sensors=14, n_qoi=4)
    twin = CascadiaTwin(config)
    result = twin.run_end_to_end()
    t0 = time.perf_counter()
    save_twin_archive(archive_path, twin.inversion, config=config)
    size_mb = archive_path.stat().st_size / 1e6
    print(
        f"[HPC center] archive written: {size_mb:.2f} MB in "
        f"{time.perf_counter() - t0:.2f} s -> {archive_path.name}"
    )
    # Hand the "event" over as if sensors streamed it to the warning center.
    return result.d_obs, result.q_true, result.forecast.mean


def warning_center(archive_path: pathlib.Path, d_obs, q_true, q_hpc) -> None:
    """Online role: no PDEs, no meshes — just the archive and the data."""
    print("\n[warning center] loading archive (no PDE code touched) ...")
    t0 = time.perf_counter()
    arch = load_twin_archive(archive_path)
    inv = rebuild_inversion(arch)
    print(
        f"[warning center] online solver ready in "
        f"{time.perf_counter() - t0:.2f} s (config: "
        f"{arch['config'].n_sensors} sensors, {arch['config'].n_qoi} QoI)"
    )

    t0 = time.perf_counter()
    m_map, forecast = inv.infer_and_predict(d_obs)
    dt = time.perf_counter() - t0
    print(f"[warning center] inversion + forecast in {dt * 1e3:.2f} ms")

    err_vs_hpc = np.abs(forecast.mean - q_hpc).max()
    print(f"[warning center] forecast == HPC-side forecast (max diff {err_vs_hpc:.2e})")
    cov = forecast.coverage(q_true, 0.95)
    print(f"[warning center] 95% CI coverage of the true event: {cov:.2f}")

    peak = float(np.abs(forecast.mean).max())
    decision = decide_alert(
        forecast, advisory=0.1 * peak, watch=0.3 * peak, warning=0.6 * peak
    )
    print("\n[warning center] alert board:")
    print(decision.summary())

    # Streaming replay of the event from the archived Cholesky factor.
    stream = StreamingInverter(inv)
    fired = None
    for k in range(1, inv.nt + 1):
        fc = stream.forecast_partial(d_obs, k)
        dec = decide_alert(
            fc, advisory=0.1 * peak, watch=0.3 * peak, warning=0.6 * peak
        )
        if fired is None and dec.max_level().name == "WARNING":
            fired = k
    print(
        f"\n[warning center] streaming replay: WARNING first issued with "
        f"{fired} slots of data ({inv.nt - fired} slots of lead time)"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "cascadia_twin.npz"
        d_obs, q_true, q_hpc = hpc_center(path)
        warning_center(path, d_obs, q_true, q_hpc)


if __name__ == "__main__":
    main()
