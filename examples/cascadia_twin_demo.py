#!/usr/bin/env python
"""The Cascadia showcase: physical units, margin-wide rupture, Fig. 3/4 data.

A 100 km cross-margin slice of a Cascadia-like ocean in SI units (1500 m/s
sound speed, 9.81 m/s^2 gravity, kilometers-deep bathymetry with shelf,
slope, and trench), observed by ocean-bottom pressure sensors at 1 Hz —
the physical regime of the paper at reduced resolution.  Produces the data
behind Fig. 1 (bathymetry-adapted mesh), Fig. 3 (truth vs inferred
displacement with uncertainty) and Fig. 4 (QoI forecasts with 95% CIs),
written as text plots and an ``.npz`` results bundle.

Expect a few minutes of runtime: the CFL substep count tracks the real
sound speed.  Pass ``--fast`` to shrink the scenario ~10x.

Usage::

    python examples/cascadia_twin_demo.py [--fast] [--out results.npz]
"""

import argparse
import time

import numpy as np

from repro.twin import CascadiaTwin, TwinConfig, decide_alert


def ascii_panel(x: np.ndarray, series: dict, width: int = 64, height: int = 10) -> str:
    """Multi-series ASCII plot (stand-in for the paper's color panels)."""
    xs = np.linspace(float(x.min()), float(x.max()), width)
    all_v = np.concatenate([np.interp(xs, x, v) for v in series.values()])
    lo, hi = float(all_v.min()), float(all_v.max())
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height + 1)]
    for mark, v in zip("#*o+", series.values()):
        cols = np.interp(xs, x, v)
        for c, val in enumerate(cols):
            r = int(round((val - lo) / span * height))
            grid[height - r][c] = mark
    legend = "   ".join(f"{m}={name}" for m, name in zip("#*o+", series.keys()))
    body = "\n".join("".join(row) for row in grid)
    return f"[{lo:+.3g}, {hi:+.3g}]  {legend}\n{body}"


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fast", action="store_true", help="~10x smaller run")
    ap.add_argument("--out", default="cascadia_demo_results.npz")
    args = ap.parse_args()

    if args.fast:
        config = TwinConfig.cascadia_2d(
            nx=16, nz=2, order=2, n_slots=60, n_sensors=10, n_qoi=4,
        )
    else:
        config = TwinConfig.cascadia_2d()

    twin = CascadiaTwin(config)
    print("assembling the Cascadia twin (physical units) ...")
    twin.setup()
    s = twin.problem_summary()
    print(
        f"  mesh: {twin.mesh.shape} elements, order {config.order}; "
        f"state DOF {s['state_dofs']:.0f}; substeps/slot "
        f"{s['rk4_substeps_per_slot']:.0f} (CFL at c = {twin.material.c} m/s)"
    )
    x_tr = twin.operator.bottom_trace.coords[:, 0]
    depth = -twin.operator.bottom_trace.coords[:, 1]
    print("\nbathymetry (Fig. 1 analogue): depth (m) vs cross-margin x")
    print(ascii_panel(x_tr / 1000.0, {"depth": depth}))

    print("\nPhase 1: adjoint wave propagations (one per sensor/QoI) ...")
    t0 = time.perf_counter()
    twin.phase1()
    print(f"  done in {time.perf_counter() - t0:.1f} s")

    scenario, d_clean, noise, d_obs = twin.simulate_event(peak_uplift=3.0)
    print(
        f"\nscenario: Mw-analogue {scenario.info['mw_analog']:.1f}, peak uplift "
        f"{scenario.info['peak_uplift']:.1f} m, rupture duration "
        f"{scenario.info['duration']:.0f} s, Vr {scenario.info['rupture_velocity']:.0f} m/s"
    )

    print("Phases 2-3: data-space Hessian and goal-oriented operators ...")
    twin.phase23(noise)

    print("Phase 4 (online): inverting", d_obs.size, "observations ...")
    t0 = time.perf_counter()
    result = twin.invert(scenario, d_clean, d_obs)
    t_online = time.perf_counter() - t0
    print(f"  online inversion + forecast + uncertainty in {t_online:.3f} s")

    print("\nFig. 3 analogue: final seafloor displacement (m)")
    print(
        ascii_panel(
            x_tr / 1000.0,
            {
                "truth": scenario.displacement,
                "inferred": result.displacement_map,
                "+2 std": result.displacement_map + 2 * result.displacement_std,
            },
        )
    )
    print(f"  displacement relative error: {result.displacement_error():.3f}")

    print("\nFig. 4 analogue: wave-height forecasts at coastal QoI points")
    lo, hi = result.forecast.credible_interval(0.95)
    for j in range(twin.qoi.n):
        t, mean, std = result.forecast.location_series(j)
        i = int(np.argmax(np.abs(result.q_true[:, j])))
        print(
            f"  QoI #{j + 1} (x = {twin.qoi.positions[j, 0] / 1000:.0f} km): "
            f"peak true {result.q_true[i, j]:+.2f} m, predicted "
            f"{mean[i]:+.2f} m in [{lo[i, j]:+.2f}, {hi[i, j]:+.2f}]"
        )
    print(f"  forecast relative error: {result.forecast_error():.3f}; "
          f"95% CI coverage: {result.coverage():.2f}")

    decision = decide_alert(result.forecast, advisory=0.2, watch=0.5, warning=1.0)
    print("\nearly-warning decision (thresholds 0.2 / 0.5 / 1.0 m):")
    print(decision.summary())

    print("\n" + twin.table3_report())

    np.savez_compressed(
        args.out,
        x=x_tr,
        depth=depth,
        displacement_true=scenario.displacement,
        displacement_map=result.displacement_map,
        displacement_std=result.displacement_std,
        q_true=result.q_true,
        q_mean=result.forecast.mean,
        q_std=result.forecast.std(),
        d_obs=d_obs,
        times=result.forecast.times,
    )
    print(f"\nresults written to {args.out}")


if __name__ == "__main__":
    main()
