#!/usr/bin/env python
"""Streaming early warning: re-invert as each second of data arrives.

Demonstrates the operational loop the paper's design enables: the offline
phases are precomputed; then, as observation slots stream in, the leading
blocks of the data-space Cholesky factor give *exact* partial-data
posteriors for the cost of two triangular solves.  The script prints, slot
by slot, the evolving forecast, its uncertainty, the alert level, and the
final measured warning latency — then asks the second operational question,
*which rupture is this*, by ranking the stream against a small scenario
bank (printed through the shared serving-report helper, the same formatter
``examples/multi_scenario_serving.py`` and the fabric CLI use).

Usage::

    python examples/streaming_early_warning.py
"""

import time

import numpy as np

from repro.serve import ScenarioBank, print_identification
from repro.twin import (
    AlertLevel,
    CascadiaTwin,
    StreamingInverter,
    TwinConfig,
    decide_alert,
)


def main() -> None:
    config = TwinConfig.demo_2d(nx=16, n_slots=24, n_sensors=14, n_qoi=4)
    twin = CascadiaTwin(config)
    print("precomputing offline phases ...")
    result = twin.run_end_to_end()
    stream = StreamingInverter(twin.inversion)

    peak = float(np.abs(result.q_true).max())
    thresholds = dict(
        advisory=0.10 * peak, watch=0.25 * peak, warning=0.50 * peak
    )
    print(
        f"true peak wave height {peak:.3f}; thresholds "
        f"adv={thresholds['advisory']:.3f} watch={thresholds['watch']:.3f} "
        f"warn={thresholds['warning']:.3f}\n"
    )
    print(
        f"{'slot':>4s} {'t':>6s} {'max |q|':>9s} {'mean std':>9s} "
        f"{'P(warn)':>8s} {'level':<9s} {'solve ms':>9s}"
    )

    fired_at = None
    for k in range(1, config.n_slots + 1):
        t0 = time.perf_counter()
        fc = stream.forecast_partial(result.d_obs, k)
        dt_ms = (time.perf_counter() - t0) * 1e3
        dec = decide_alert(fc, **thresholds)
        p_warn = float(max(dec.exceedance["warning"]))
        level = dec.max_level()
        if fired_at is None and level >= AlertLevel.WARNING:
            fired_at = k
        print(
            f"{k:>4d} {k * config.dt_obs:>6.2f} {np.abs(fc.mean).max():>9.4f} "
            f"{fc.std().mean():>9.4f} {p_warn:>8.3f} {level.name:<9s} {dt_ms:>9.2f}"
        )

    if fired_at is None:
        print("\nno WARNING issued within the observation window")
    else:
        print(
            f"\nWARNING first issued after {fired_at} slots "
            f"({fired_at * config.dt_obs:.2f} time units of data) — "
            f"{config.n_slots - fired_at} slots before the window ends"
        )

    # Consistency: the final streaming solve equals the batch solution.
    m_stream = stream.infer_partial(result.d_obs, config.n_slots)
    err = np.abs(m_stream - result.m_map).max()
    print(f"final streaming MAP == batch MAP (max abs diff {err:.2e})")

    # Which rupture is this?  Rank the stream against a small scenario
    # bank by exact streaming model evidence at the mid-event horizon.
    bank = ScenarioBank(
        twin.operator.bottom_trace, config.n_slots, config.dt_obs, seed=5
    )
    bank.generate(8)
    server_k = config.n_slots // 2
    session = twin.inversion.streaming_state()
    ident = bank.identifier(session)
    ranking = ident.open(result.d_obs[:, :, None]).advance(server_k).posterior()
    print(f"\nscenario identification at horizon {server_k} (8-entry bank):")
    print_identification(ranking, top=3)


if __name__ == "__main__":
    main()
