#!/usr/bin/env python
"""Sensor-network design study: forecast skill vs offshore coverage.

The paper (Section VIII) notes the approach is limited mainly by offshore
sensor sparsity.  This example quantifies the trade-off the way a network
designer would: for growing sensor counts (and for random vs regular
layouts), it reports reconstruction error, forecast error, posterior
uncertainty, and the streaming warning latency — the numbers that justify
instruments like the NEPTUNE observatory or SZ4D deployments.

Usage::

    python examples/sensor_placement.py
"""

import numpy as np

from repro.twin import CascadiaTwin, StreamingInverter, TwinConfig


def run_case(n_sensors: int, layout: str, seed: int = 0):
    """One twin run; returns the design-relevant metrics."""
    config = TwinConfig.demo_2d(
        nx=16, n_slots=20, n_sensors=n_sensors, n_qoi=4,
        sensor_layout=layout, seed=seed,
    )
    twin = CascadiaTwin(config)
    result = twin.run_end_to_end()
    stream = StreamingInverter(twin.inversion)
    peak = float(np.abs(result.q_true).max())
    fired, _ = stream.warning_latency(
        result.d_obs, 0.1 * peak, 0.25 * peak, 0.5 * peak
    )
    return {
        "param_err": result.parameter_error(),
        "forecast_err": result.forecast_error(),
        "mean_std": float(np.mean(result.displacement_std)),
        "latency": fired if fired is not None else np.nan,
    }


def main() -> None:
    print("regular sensor arrays:")
    print(
        f"{'sensors':>8s} {'param err':>10s} {'fcst err':>9s} "
        f"{'mean std':>9s} {'warn latency':>13s}"
    )
    for n in (3, 6, 12, 24):
        m = run_case(n, "regular")
        print(
            f"{n:>8d} {m['param_err']:>10.3f} {m['forecast_err']:>9.3f} "
            f"{m['mean_std']:>9.4f} {m['latency']:>10.0f} slots"
        )

    print("\nrandom layouts (10 seeds, 8 sensors) — placement matters:")
    errs = []
    for seed in range(10):
        m = run_case(8, "random", seed=seed)
        errs.append(m["forecast_err"])
    print(
        f"  forecast error: best {min(errs):.3f}, median {np.median(errs):.3f}, "
        f"worst {max(errs):.3f}"
    )
    m_reg = run_case(8, "regular")
    print(f"  regular array (8 sensors):         {m_reg['forecast_err']:.3f}")


if __name__ == "__main__":
    main()
