#!/usr/bin/env python
"""Multi-scenario serving: a fleet of concurrent events through one twin.

The production shape of the paper's Phase 4: a ScenarioBank generates a
seeded library of ruptures spanning magnitude/hypocenter/kinematics, an
OperatorCache runs Phases 2-3 once for the sensor geometry (and persists
the factors, so re-running this script skips the offline cost), and a
BatchedPhase4Server inverts and forecasts every stream in single BLAS-3
passes — then sweeps the streaming early-warning horizons for the whole
fleet in one *incremental* pass (the
``repro.inference.streaming.IncrementalStreamingPosterior`` engine: one
small block solve, one gemm, and one covariance downdate per observation
slot, never a per-horizon re-solve), printing each scenario's alert
latency.  A *ragged* fleet is then served: every stream at its own
data horizon, grouped by slot, in one batched pass.  Finally, streaming
*scenario identification* ranks every stream against the whole bank by
exact truncated-data model evidence — posterior scenario probabilities
``p(s | d_k)`` sharpening slot by slot — and blends the bank's
scenario-conditioned forecasts into posterior mixture bands.

Runs in well under a minute on a laptop.

Usage::

    python examples/multi_scenario_serving.py [--streams N] [--cache-dir DIR]
"""

import argparse
import time

import numpy as np

from repro.serve import (
    BatchedPhase4Server,
    OperatorCache,
    ScenarioBank,
    format_fabric_report,
    print_identification,
)
from repro.twin import AlertLevel, CascadiaTwin, TwinConfig


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--streams", type=int, default=32, help="concurrent events")
    ap.add_argument("--cache-dir", default=None, help="persist Phase 2-3 operators")
    args = ap.parse_args()

    cfg = TwinConfig.demo_2d(nx=16, n_slots=24, n_sensors=16, n_qoi=4)
    twin = CascadiaTwin(cfg).setup()
    twin.phase1()

    # 1. A seeded, stratified scenario library on the twin's trace grid.
    bank = ScenarioBank(twin.operator.bottom_trace, cfg.n_slots, cfg.dt_obs, seed=7)
    bank.generate(args.streams)
    print(f"scenario bank ({len(bank)} entries):")
    print(bank.summary_table())

    # 2. Offline phases, once per geometry (cached across runs if --cache-dir).
    # observation_batch returns the fleet noise model its draws used, so the
    # inversion runs under exactly the noise statistics of the data.
    d_clean, noise, d_obs = bank.observation_batch(
        twin.F, noise_relative=cfg.noise_relative
    )
    cache = OperatorCache(directory=args.cache_dir)
    t0 = time.perf_counter()
    inv = cache.get_or_build(twin, noise)
    print(f"\n{cache.report()}  ({time.perf_counter() - t0:.2f} s)")

    # 3. One batched pass: every MAP field, every forecast, every alert.
    server = BatchedPhase4Server(inv)
    t0 = time.perf_counter()
    result = server.serve(d_obs, thresholds=(0.01, 0.05, 0.10))
    dt = time.perf_counter() - t0
    print(
        f"served {result.n_streams} streams in {dt * 1e3:.1f} ms "
        f"({result.n_streams / dt:,.0f} streams/sec)"
    )

    # 4. Fleet-wide streaming early warning: one incremental sweep — the
    # engine advances every stream one observation slot per step instead
    # of re-solving each truncated system.
    t0 = time.perf_counter()
    latencies, _ = server.warning_latencies(d_obs, 0.01, 0.05, 0.10)
    dt = time.perf_counter() - t0
    print(
        f"\nincremental latency sweep: {cfg.n_slots} horizons x "
        f"{result.n_streams} streams in {dt * 1e3:.1f} ms"
    )
    print(f"\n{'scenario':<14s} {'Mw':>6s} {'param err':>10s} {'alert':>8s} {'latency':>9s}")
    for j, entry in enumerate(bank):
        truth = entry.scenario.m
        err = np.linalg.norm(result.m_map[:, :, j] - truth) / np.linalg.norm(truth)
        level = AlertLevel(int(result.decisions[j].max_level())).name
        lat = f"slot {latencies[j]}" if latencies[j] is not None else "-"
        print(f"{entry.scenario_id:<14s} {entry.mw:>6.2f} {err:>10.3f} {level:>8s} {lat:>9s}")

    # 5. Ragged fleet: events start at different times, so each stream has
    # its own data horizon; one batched pass serves them all, grouped by
    # the slot being absorbed.
    rng = np.random.default_rng(cfg.seed)
    horizons = rng.integers(2, cfg.n_slots + 1, size=result.n_streams)
    fleet = server.open_fleet(d_obs)
    fleet.advance(horizons)
    forecasts = fleet.forecasts()
    mean_std = [float(np.mean(fc.std())) for fc in forecasts]
    print(
        f"\nragged fleet: horizons {int(horizons.min())}..{int(horizons.max())} "
        f"in one pass; posterior std spans "
        f"{min(mean_std):.4f} (most data) .. {max(mean_std):.4f} (least data)"
    )

    # 6. Streaming scenario identification: "which rupture is this?" —
    # every stream ranked against the whole bank by exact truncated-data
    # model evidence, accumulated one observation slot at a time (a small
    # cross-term gemm per slot, never a from-scratch Gaussian log-pdf).
    t0 = time.perf_counter()
    session = server.open_identification(bank, d_obs)
    converged = np.full(result.n_streams, -1)
    for k in range(1, cfg.n_slots + 1):
        session.advance(k)
        res = session.posterior()
        now = res.map_index() == np.arange(result.n_streams)
        converged[(converged < 0) & now] = k
    dt = time.perf_counter() - t0
    res = session.posterior()
    print(
        f"\nstreaming identification: {cfg.n_slots} horizons x "
        f"{result.n_streams} streams x {len(bank)} scenarios in {dt * 1e3:.1f} ms"
    )
    locked = converged[converged > 0]
    lock_on = f"{int(np.median(locked))}" if locked.size else "never"
    print(f"median slots to lock onto the true scenario: {lock_on}")
    # The identification table itself comes from the shared serving-report
    # helper (repro.serve.reporting) — the same formatter every serving
    # surface uses, so examples, CLI, and benchmarks read alike.
    print_identification(res, truth_ids=bank.ids()[: result.n_streams], top=2, max_rows=6)
    # Bank-conditioned mixture forecasts blend the scenario-conditioned
    # posteriors by p(s | d) — wider bands while identification is ambiguous.
    mix = session.forecast_mixture()
    print(
        f"mixture forecast mean posterior std (stream 0): "
        f"{float(np.mean(mix[0].std())):.4f}"
    )

    # 7. The serving fabric: the same identification, sharded across a
    # worker pool with shared-memory operators, streams admitted through
    # a micro-batching queue, and a certified coarse screen pruning the
    # bank before the exact evidence runs (see docs/SERVING.md for the
    # operator guide; this demo stays single-host and small).
    with server.fabric(
        [bank], n_workers=2, max_batch=16, memory_budget=256 << 20
    ) as fabric:
        t0 = time.perf_counter()
        tickets = [
            fabric.submit(d_obs[:, :, j], cfg.n_slots)
            for j in range(result.n_streams)
        ]
        fabric.flush()
        dt = time.perf_counter() - t0
        n_right = sum(
            t.result().map_ids()[0] == bank[j].scenario_id
            for j, t in enumerate(tickets)
        )
        print(
            f"\nserving fabric: {result.n_streams} micro-batched requests in "
            f"{dt * 1e3:.1f} ms; MAP correct for {n_right}/{result.n_streams}"
        )
        print(format_fabric_report(fabric.last_report, fabric.report()))


if __name__ == "__main__":
    main()
