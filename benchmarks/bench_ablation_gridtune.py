"""Ref. [26] ablations: FFTMatvec data layout and 2D processor-grid tuning.

Two implementation studies from the FFTMatvec paper the twin builds on:

1. **data layout** — `space-major` (transpose once, FFT contiguous) vs
   `time-major` (strided FFT axis): measured matvec times on a kernel
   large enough for layout to matter;
2. **2D grid autotuning** — the modeled-optimal ``(pr, pc)`` against a
   brute-force sweep of *executed* virtual-parallel matvecs with
   communication byte accounting.
"""

import time

import numpy as np
import pytest

from conftest import write_report

from repro.hpc.fft_parallel import DistributedFFTMatvec, autotune_grid
from repro.hpc.machine import EL_CAPITAN
from repro.hpc.partition import factor_grids
from repro.inference.toeplitz import BlockToeplitzOperator


def _time(fn, n_rep=5):
    fn()  # warm-up
    t0 = time.perf_counter()
    for _ in range(n_rep):
        fn()
    return (time.perf_counter() - t0) / n_rep


def test_layout_ablation(benchmark, bench_rng):
    nt, nd, nm = 128, 24, 1200
    kernel = bench_rng.standard_normal((nt, nd, nm))
    m = bench_rng.standard_normal((nt, nm))
    ops = {
        lay: BlockToeplitzOperator(kernel, layout=lay)
        for lay in ("space-major", "time-major")
    }
    times = {lay: _time(lambda o=op: o.matvec(m)) for lay, op in ops.items()}
    benchmark(lambda: ops["space-major"].matvec(m))

    d_ref = ops["space-major"].matvec(m)
    np.testing.assert_allclose(ops["time-major"].matvec(m), d_ref, atol=1e-11)

    lines = [
        "ABLATION - FFTMatvec data layout (paper Section V-A)",
        f"kernel: Nt={nt}, Nd={nd}, Nm={nm}",
        f"  space-major (transpose + contiguous FFT): {times['space-major'] * 1e3:8.2f} ms",
        f"  time-major  (strided FFT axis):           {times['time-major'] * 1e3:8.2f} ms",
        f"  time-major / space-major: {times['time-major'] / times['space-major']:.2f}x",
        "(identical results; which layout wins is hardware-dependent: on GPUs",
        " coalesced access makes the transposed layout decisively faster --",
        " the paper's choice -- while CPU pocketfft handles strided axes well",
        " and the explicit transpose copies may dominate, as measured here)",
    ]
    write_report("ablation_layout", "\n".join(lines))


def test_grid_autotune_ablation(benchmark, bench_rng):
    nt, nd, nm, nranks = 48, 24, 480, 8
    kernel = bench_rng.standard_normal((nt, nd, nm))
    m = bench_rng.standard_normal((nt, nm))
    serial = BlockToeplitzOperator(kernel)
    d_ref = serial.matvec(m)

    rows = []
    for pr, pc in factor_grids(nranks, 2):
        if pr > nd or pc > nm:
            continue
        dist = DistributedFFTMatvec(kernel, pr, pc)
        d = dist.matvec(m)
        np.testing.assert_allclose(d, d_ref, atol=1e-11)
        t = _time(lambda dd=dist: dd.matvec(m), n_rep=3)
        rows.append((pr, pc, t, dist.comm.total_bytes))

    (pr_star, pc_star), t_model = autotune_grid(nt, nd, nm, nranks, EL_CAPITAN)
    benchmark(lambda: serial.matvec(m))

    lines = [
        "ABLATION - 2D processor-grid tuning for FFTMatvec (ref. [26])",
        f"kernel Nt={nt}, Nd={nd}, Nm={nm}, ranks={nranks}",
        f"{'grid':>8s} {'measured ms':>12s} {'comm bytes':>12s}",
    ]
    for pr, pc, t, b in sorted(rows, key=lambda r: r[2]):
        tag = "  <- model pick" if (pr, pc) == (pr_star, pc_star) else ""
        lines.append(f"  ({pr},{pc})  {t * 1e3:>10.2f}  {b:>12,d}{tag}")
    lines.append(f"model-selected grid: ({pr_star},{pc_star})")
    lines.append(
        "(the model minimizes *machine* time, alpha-beta communication at "
        "cluster scale;\n in-process measured times are Python-overhead "
        "dominated, so the comm-bytes\n column is the model-relevant "
        "measurement)"
    )
    write_report("ablation_gridtune", "\n".join(lines))

    # The model pick's measured comm volume must be near the sweep minimum.
    by_grid = {(pr, pc): b for pr, pc, _, b in rows}
    comm_star = by_grid[(pr_star, pc_star)]
    assert comm_star <= 2.0 * min(by_grid.values()) + 1
