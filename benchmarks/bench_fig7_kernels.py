"""Fig. 7: throughput of the kernel-variant ladder over a DOF sweep.

Measures the *actual* DOF throughput (MDOF/s here, GDOF/s in the paper) of
the five gradient-kernel variants on this machine across problem sizes,
alongside their analytic FLOP/byte ratios.  Shape claims asserted (the
paper's Fig. 7 narrative):

* batching ("shared" vs "initial") delivers an order-of-magnitude-class
  speedup — the 13x shared-memory step;
* the optimized/fused variants are the fastest;
* the matrix-free variant has higher arithmetic intensity but lower DOF
  throughput than fused partial assembly.
"""

import time

import numpy as np
import pytest

from conftest import write_report

from repro.fem.geometry import ElementGeometry
from repro.fem.kernels import (
    KERNEL_VARIANTS,
    kernel_flop_byte_counts,
    make_gradient_kernel,
)
from repro.fem.mesh import StructuredMesh
from repro.fem.quadrature import gauss_legendre, tensor_rule
from repro.fem.spaces import H1Space, L2Space

ORDER = 4  # the paper's pressure order


def _setup(n_elem_x):
    mesh = StructuredMesh.ocean(
        [np.linspace(0, 4, n_elem_x + 1)], nz=4,
        depth=lambda x: 0.9 + 0.1 * np.sin(x),
    )
    h1 = H1Space(mesh, ORDER)
    l2 = L2Space(mesh, ORDER - 1)
    rule = gauss_legendre(ORDER)
    geom = ElementGeometry.compute(mesh.element_vertices(), [rule.points] * 2)
    _, w = tensor_rule([rule] * 2)
    B = h1.basis_1d.eval(rule.points)
    D = h1.basis_1d.deriv(rule.points)
    kernels = {}
    for var in KERNEL_VARIANTS:
        if var == "mf":
            kernels[var] = make_gradient_kernel(
                "mf", B, D, weights=w,
                element_vertices=mesh.element_vertices(),
                velocity_nodes_1d=rule.points,
            )
        else:
            kernels[var] = make_gradient_kernel(var, B, D, geom=geom, weights=w)
    return mesh, h1, l2, kernels


def _throughput(kernel, pe, ue, n_rep):
    """Fused-pair applications per second, in processed DOF/s."""
    kernel.apply_pair(pe, ue)  # warm-up
    t0 = time.perf_counter()
    for _ in range(n_rep):
        kernel.apply_pair(pe, ue)
    dt = (time.perf_counter() - t0) / n_rep
    dofs = pe.shape[0] * pe.shape[1] + ue.size
    return dofs / dt


def test_fig7_kernel_ladder(benchmark, bench_rng):
    sizes = [8, 32, 128]
    table = {v: [] for v in KERNEL_VARIANTS}
    dof_counts = []
    for nx in sizes:
        mesh, h1, l2, kernels = _setup(nx)
        pe = bench_rng.standard_normal((mesh.n_elements, h1.nloc))
        ue = bench_rng.standard_normal((mesh.n_elements, l2.nloc, 2))
        dof_counts.append(mesh.n_elements * (h1.nloc + 2 * l2.nloc))
        n_rep = max(2, 2000 // nx)
        for var, k in kernels.items():
            if var == "initial" and nx > 32:
                table[var].append(np.nan)  # per-element loops get too slow
                continue
            table[var].append(_throughput(k, pe, ue, n_rep))

    # pytest-benchmark on the headline (fused, largest size)
    mesh, h1, l2, kernels = _setup(sizes[-1])
    pe = bench_rng.standard_normal((mesh.n_elements, h1.nloc))
    ue = bench_rng.standard_normal((mesh.n_elements, l2.nloc, 2))
    benchmark(lambda: kernels["fused"].apply_pair(pe, ue))

    counts = {
        v: kernel_flop_byte_counts(
            128 * 4, ORDER + 1, ORDER, 2,
            variant="mf" if v == "mf" else "optimized",
        )
        for v in KERNEL_VARIANTS
    }
    lines = [
        "FIG. 7 analogue - gradient-kernel throughput (MDOF/s) vs DOF",
        f"{'variant':<12s}" + "".join(f"{d:>12,d}" for d in dof_counts)
        + f"{'flop/byte':>12s}",
    ]
    for var in KERNEL_VARIANTS:
        vals = "".join(
            f"{t / 1e6:>12.1f}" if np.isfinite(t) else f"{'-':>12s}"
            for t in table[var]
        )
        ai = counts[var]["flops"] / counts[var]["bytes"]
        lines.append(f"{var:<12s}{vals}{ai:>12.2f}")
    big = {v: table[v][-1] for v in KERNEL_VARIANTS if np.isfinite(table[v][-1])}
    shared_speedup = big["shared"] / table["initial"][0]
    lines.append(
        f"\nbatched-vs-initial speedup (shared-memory analogue): "
        f"{shared_speedup:.0f}x (paper: 13x)"
    )
    lines.append(
        f"MF arithmetic intensity {counts['mf']['flops'] / counts['mf']['bytes']:.1f} "
        f"vs PA {counts['fused']['flops'] / counts['fused']['bytes']:.1f} f/B "
        f"(paper: 7.3 vs 2.4); MF/fused throughput "
        f"{big['mf'] / big['fused']:.2f} (paper: ~0.89)"
    )
    write_report("fig7_kernels", "\n".join(lines))

    # Shape assertions (the Fig. 7 narrative).
    assert big["shared"] > 5 * table["initial"][0], "batching must be >> per-element"
    assert big["fused"] >= 0.6 * max(big.values()), "fused PA near the top tier"
    assert big["mf"] < big["fused"], "MF slower than fused PA despite higher intensity"
    assert counts["mf"]["flops"] / counts["mf"]["bytes"] > 2 * (
        counts["fused"]["flops"] / counts["fused"]["bytes"]
    ), "MF must have much higher arithmetic intensity"
