"""Fig. 5 + Table II: weak and strong scaling on all four machines.

Pushes the exact Table II configurations through the calibrated
performance model and renders the Fig. 5 curves; separately *executes* the
domain-decomposed operator on virtual ranks at small scale to validate the
model's halo-byte inputs against measured communicator traffic.

Paper targets: El Capitan 92% weak / 79% strong at 43,520 GPUs (55.5 T
DOF); Alps 99% / 91%; Perlmutter ~1.00 / 0.92; Frontera 95% weak / 70%
strong.  Endpoints are calibrated; every intermediate point and the whole
strong curve are model predictions.
"""

import numpy as np
import pytest

from conftest import write_report

from repro.hpc.machine import (
    ALL_MACHINES,
    EL_CAPITAN,
    table2_strong_series,
    table2_weak_series,
)
from repro.hpc.scaling import ScalingStudy


def test_fig5_scaling_curves(benchmark):
    def run_all():
        return {m.name: ScalingStudy(m) for m in ALL_MACHINES}

    studies = benchmark(run_all)

    lines = ["FIG. 5 / TABLE II analogue - weak & strong scaling (model)"]
    lines.append("\nTable II setup:")
    for m in ALL_MACHINES:
        w = table2_weak_series(m)
        lines.append(
            f"  {m.name:<12s} {w[0].nodes:>6d}-{w[-1].nodes:<6d} nodes  "
            f"grid {w[0].grid} -> {w[-1].grid}  "
            f"elements {w[0].elements:,} -> {w[-1].elements:,} "
            f"({w[0].elements_per_gpu:,}/GPU weak)"
        )
    paper = {
        "El Capitan": (0.92, 0.79),
        "Alps": (0.99, 0.91),
        "Perlmutter": (1.00, 0.92),
        "Frontera": (0.95, 0.70),
    }
    for m in ALL_MACHINES:
        st = studies[m.name]
        lines.append(f"\n{st.report()}")
        pw, ps = paper[m.name]
        got_w = st.weak()[-1].efficiency
        got_s = st.strong()[-1].efficiency
        lines.append(
            f"  paper targets: weak {pw:.2f} (model {got_w:.3f}), "
            f"strong {ps:.2f} (model {got_s:.3f})"
        )
        assert got_w == pytest.approx(pw, abs=0.02)
        assert got_s == pytest.approx(ps, abs=0.02)
    # headline: largest run is 55.5 T DOF on 43,520 GPUs
    big = table2_weak_series(EL_CAPITAN)[-1]
    lines.append(
        f"\nlargest configuration: {big.dof / 1e12:.1f} T DOF on {big.gpus:,} GPUs "
        f"({big.dof_per_gpu / 1e9:.2f} B DOF/GPU) - paper: 55.5 T on 43,520"
    )
    write_report("fig5_scaling", "\n".join(lines))
    assert big.dof == pytest.approx(55.5e12, rel=0.01)


def test_fig5_decomposed_validation(benchmark, bench_rng):
    """The executed decomposition validates the model's traffic inputs."""
    from repro.fem.mesh import StructuredMesh
    from repro.hpc.decomposed import DecomposedWaveOperator
    from repro.hpc.partition import ProcessGrid
    from repro.ocean.acoustic_gravity import AcousticGravityOperator
    from repro.ocean.material import SeawaterMaterial

    mat = SeawaterMaterial.nondimensional()
    mesh = StructuredMesh.ocean(
        [np.linspace(0, 4, 13)], nz=4, depth=lambda x: 0.9 + 0.1 * np.sin(x)
    )
    serial = AcousticGravityOperator(
        mesh, order=3, material=mat, kernel_variant="optimized"
    )
    X = bench_rng.standard_normal((serial.nstate, 1))
    Y_ref = serial.apply(X)

    rows = ["decomposed-vs-serial validation (executed on virtual ranks):"]
    for dims in [(2, 2), (4, 2), (6, 4)]:
        dec = DecomposedWaveOperator(
            mesh, order=3, material=mat, grid=ProcessGrid(dims)
        )
        dec.comm.reset()
        Y = dec.apply(X)
        err = float(np.abs(Y - Y_ref).max() / np.abs(Y_ref).max())
        meas = dec.measured_interface_bytes()
        pred = dec.analytic_interface_bytes(k=1)
        rows.append(
            f"  grid {dims}: max rel err {err:.2e}; interface bytes "
            f"measured {meas:,} == predicted {pred:,}"
        )
        assert err < 1e-12
        assert meas == pred

    dec = DecomposedWaveOperator(
        mesh, order=3, material=mat, grid=ProcessGrid((2, 2))
    )
    benchmark.pedantic(lambda: dec.apply(X), iterations=1, rounds=3)
    write_report("fig5_decomposed_validation", "\n".join(rows))
