"""Fig. 6 / Table I: application-timer breakdown, projected to 20k steps.

Two views, exactly as the paper presents them:

1. *measured* — the reduced-scale twin's Table I timers, with the adjoint
   p2o and I/O entries projected from the measured per-step cost to 20,000
   timesteps (the paper's projection);
2. *modeled* — the Perlmutter weak/strong-limit shares from the scaling
   study (paper: solver 99% of runtime in the weak limit, ~95% strong).
"""

import time

import numpy as np
import pytest

from conftest import write_report

from repro.hpc.machine import PERLMUTTER, table2_strong_series, table2_weak_series
from repro.hpc.scaling import ScalingStudy


def test_fig6_measured_breakdown(bench_twin, benchmark):
    twin, result = bench_twin
    t = twin.timers.as_dict()

    # Measured per-timestep solver cost from the Phase 1 adjoint runs.
    total_steps = 2 * twin.propagator.total_timesteps  # p2o + p2q sweeps
    per_step = (t["Adjoint p2o"] + t["Adjoint p2q"]) / total_steps
    projected_solver = 20_000 * per_step

    # Measured I/O: write the p2o kernel out (archive), timed.
    import tempfile, pathlib
    from repro.twin.archive import save_twin_archive

    with tempfile.TemporaryDirectory() as d:
        t0 = time.perf_counter()
        save_twin_archive(pathlib.Path(d) / "k.npz", twin.inversion, twin.config)
        t_io_once = time.perf_counter() - t0
    t_io = t_io_once * (20_000 / max(twin.propagator.total_timesteps, 1) / 10)

    comp = {
        "Initialization": t["Initialization"],
        "Setup": t["Setup"],
        "Adjoint p2o (proj. 20k steps)": projected_solver,
        "I/O (proj.)": t_io,
    }
    total = sum(comp.values())
    lines = [
        "FIG. 6 / TABLE I analogue - application timers, measured at reduced",
        "scale with adjoint & I/O projected to 20,000 timesteps:",
    ]
    for name, sec in comp.items():
        lines.append(f"  {name:<32s} {sec:>10.3f} s   {100 * sec / total:6.2f} %")
    solver_share = projected_solver / total
    lines.append(f"  solver share: {100 * solver_share:.2f} % (paper: ~99 %)")

    benchmark(lambda: twin.timers.breakdown())
    write_report("fig6_timers_measured", "\n".join(lines))
    assert solver_share > 0.9, "solver must dominate the projected runtime"


def test_fig6_modeled_shares(benchmark):
    st = ScalingStudy(PERLMUTTER)
    weak_cfg = table2_weak_series(PERLMUTTER)[-1]
    strong_cfg = table2_strong_series(PERLMUTTER)[-1]

    def shares():
        return (
            st.figure6_breakdown(weak_cfg),
            st.figure6_breakdown(strong_cfg),
        )

    bw, bs = benchmark(shares)
    lines = [
        "FIG. 6 modeled timer shares on Perlmutter (20k steps):",
        f"{'component':<16s} {'weak limit':>12s} {'strong limit':>13s}  paper(w/s)",
    ]
    paper = {
        "Initialization": ("0.02%", "0.02%"),
        "Setup": ("0.6%", "2.3%"),
        "Adjoint p2o": ("99%", "95%"),
        "I/O": ("0.08%", "2.2%"),
    }
    for key in ("Initialization", "Setup", "Adjoint p2o", "I/O"):
        lines.append(
            f"{key:<16s} {100 * bw[key] / bw['total']:>11.2f}% "
            f"{100 * bs[key] / bs['total']:>12.2f}%  {paper[key][0]}/{paper[key][1]}"
        )
    write_report("fig6_timers_modeled", "\n".join(lines))

    assert bw["solver_share"] > 0.97  # paper: 99%
    assert 0.85 < bs["solver_share"] < bw["solver_share"]  # paper: 95%
