"""Event-driven chaos replay: end-to-end KPIs through the serving fabric.

Every other benchmark scores isolated requests; this one scores the
paper's actual claim — *time to a correct, calibrated answer during an
event* — by replaying a seeded chaos script (overlapping events, sensor
dropout, noise bursts, worker kills and respawns) through a live
:class:`~repro.serve.fabric.ServingFabric` via the
:class:`~repro.twin.orchestrator.TwinOrchestrator`, and recording the
per-event KPI trajectory the same way throughput is tracked for the
fabric:

* **time-to-correct-identification** — first horizon where the true
  scenario enters the certified top-k and stays;
* **warning lead time** — alert-fire horizon vs the truth's
  threshold-crossing slot;
* **forecast interval calibration** — empirical coverage of the
  moment-matched mixture bands against the true clean QoI trajectory.

Two hard gates (enforced in tiny/CI mode too):

* every event is identified — a chaos replay that loses an event
  entirely fails the run;
* the replay is **deterministic**: the script is replayed twice on
  fresh fabrics and both runs must produce byte-identical KPI payloads
  (wall-clock timings live outside the compared section of
  ``benchmarks/reports/BENCH_orchestrator.json``).

Run standalone (the CI smoke path) or under pytest::

    PYTHONPATH=src python benchmarks/bench_orchestrator.py [--tiny]
    PYTHONPATH=src python -m pytest benchmarks/bench_orchestrator.py -q
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from conftest import write_json, write_report  # noqa: E402

from repro.serve import BatchedPhase4Server, ScenarioBank  # noqa: E402
from repro.serve.reporting import format_orchestrator_report  # noqa: E402
from repro.twin import CascadiaTwin, TwinConfig  # noqa: E402
from repro.twin.orchestrator import (  # noqa: E402
    EventScript,
    OrchestratorConfig,
    TwinOrchestrator,
)

# ``kill_workers`` bounds the kill schedule's worker ids: shards are
# assigned from worker 0 upward, so restricting kills to the low ids
# guarantees every scripted kill hits a shard-bearing worker even when
# the bank spans fewer shards than the fleet has workers.
FULL = dict(
    nt=16, nx=10, nd=12, nq=3, scenarios=512, n_events=10,
    workers=4, kill_workers=2, n_kills=2, tick_stride=4, seed=2025,
    sketch_rank=8, screen_top=4,
)
TINY = dict(
    nt=10, nx=6, nd=8, nq=3, scenarios=24, n_events=8,
    workers=2, kill_workers=1, n_kills=1, tick_stride=2, seed=2025,
    sketch_rank=4, screen_top=4,
)


def _build(nt, nx, nd, nq, scenarios):
    cfg = TwinConfig.demo_2d(nx=nx, n_slots=nt, n_sensors=nd, n_qoi=nq)
    twin = CascadiaTwin(cfg).setup()
    twin.phase1()
    bank = ScenarioBank(twin.operator.bottom_trace, cfg.n_slots, cfg.dt_obs, seed=29)
    bank.generate(scenarios)
    _, noise, _ = bank.observation_batch(twin.F, noise_relative=cfg.noise_relative)
    inv = twin.phase23(noise)
    return BatchedPhase4Server(inv), bank


def run_bench(
    nt, nx, nd, nq, scenarios, n_events, workers, kill_workers, n_kills,
    tick_stride, seed, sketch_rank, screen_top, tiny=False,
) -> Dict[str, object]:
    server, bank = _build(nt, nx, nd, nq, scenarios)
    script = EventScript.generate(
        bank, nt=nt, nd=nd, n_events=n_events, seed=seed,
        n_workers=kill_workers, n_kills=n_kills, respawn_after=2,
    )
    cfg = OrchestratorConfig(tick_stride=tick_stride)

    # The determinism gate: the same script on two fresh fabrics must
    # reproduce the KPI payload byte-for-byte, kills and all.
    payloads, results, walls = [], [], []
    for _ in range(2):
        with server.fabric(
            [bank], n_workers=workers, screen_top=screen_top,
            sketch_rank=sketch_rank, screen_stride=2,
        ) as fabric:
            orch = TwinOrchestrator(fabric, bank, script, cfg)
            t0 = time.perf_counter()
            res = orch.run()
            walls.append(time.perf_counter() - t0)
            results.append(res)
            payloads.append(json.dumps(res.kpi_payload(), sort_keys=True))

    res = results[0]
    deterministic = payloads[0] == payloads[1]
    assert deterministic, "same-seed chaos replays produced different KPIs"
    assert res.all_identified, (
        "chaos replay lost an event entirely:\n"
        + format_orchestrator_report(res)
    )

    s = res.summary
    lines = [
        "TWIN ORCHESTRATOR - chaos replay KPIs through the live fabric",
        f"problem: Nt={nt} Nd={nd} nx={nx}, bank of {scenarios} scenarios; "
        f"{n_events} overlapping events (dropout + bursts), "
        f"{n_kills} worker kill(s) + respawn, {workers} workers, "
        f"stride {tick_stride}",
        "",
        format_orchestrator_report(res),
        "",
        f"determinism: two same-seed replays byte-identical = {deterministic}",
        f"wall per replay: {walls[0]:.2f} s / {walls[1]:.2f} s",
    ]
    write_report("orchestrator", "\n".join(lines))
    write_json("orchestrator", {
        "bench": "orchestrator",
        "tiny": tiny,
        "problem": {
            "nt": nt, "nd": nd, "nx": nx, "nq": nq,
            "scenarios": scenarios, "n_events": n_events,
            "workers": workers, "n_kills": n_kills,
            "tick_stride": tick_stride, "seed": seed,
            "sketch_rank": sketch_rank, "screen_top": screen_top,
        },
        # The deterministic section: byte-identical across same-seed runs.
        "kpis": res.kpi_payload(),
        "deterministic_across_reruns": deterministic,
        # Wall timings live OUTSIDE the compared section by design.
        "wall_s": walls[0],
        "wall_s_repeat": walls[1],
    })
    return {
        "all_identified": res.all_identified,
        "deterministic": deterministic,
        "n_events": s["n_events"],
        "mean_tti_slots": s["mean_tti_slots"],
        "mean_coverage": s["mean_coverage"],
        "degraded_requests": s["degraded_requests"],
        "wall_s": walls[0],
    }


def test_orchestrator_chaos_replay():
    r = run_bench(**FULL)
    assert r["all_identified"] and r["deterministic"]
    assert r["degraded_requests"] > 0, "the kill schedule never degraded a request"


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--tiny",
        action="store_true",
        help="smoke-test sizes (CI): 8 events, 2 workers, 1 injected kill; "
        "identification and determinism gates still enforced",
    )
    args = ap.parse_args()
    r = run_bench(**(TINY if args.tiny else FULL), tiny=args.tiny)
    if not r["all_identified"]:
        raise SystemExit("an event missed identification entirely")
    if not r["deterministic"]:
        raise SystemExit("same-seed replays diverged")


if __name__ == "__main__":
    main()
