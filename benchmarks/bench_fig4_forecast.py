"""Fig. 4: real-time QoI predictions with 95% credible intervals.

Regenerates the paper's Fig. 4 content: per-location wave-height time
series (truth, prediction, 95% CI) from noisy data, plus the coverage
statistic that makes the Bayesian claim quantitative.
"""

import numpy as np
import pytest

from conftest import write_report


def test_fig4_forecast_series(bench_twin, benchmark):
    twin, result = bench_twin
    fc = result.forecast
    q_true = result.q_true

    cov = benchmark(lambda: fc.coverage(q_true, 0.95))
    lo, hi = fc.credible_interval(0.95)

    lines = [
        "FIG. 4 analogue - QoI forecasts with 95% CIs (reduced scale)",
        f"locations: {fc.nq}, instants: {fc.nt}, forecast rel err: "
        f"{result.forecast_error():.3f}, 95% CI coverage: {cov:.3f}",
        "",
    ]
    for j in range(fc.nq):
        t, mean, std = fc.location_series(j)
        peak_i = int(np.argmax(np.abs(q_true[:, j])))
        lines.append(
            f"QoI #{j + 1}: peak true {q_true[peak_i, j]:+.4f} at t={t[peak_i]:.2f}  "
            f"predicted {mean[peak_i]:+.4f} +- {1.96 * std[peak_i]:.4f}"
        )
        marks = []
        for i in range(fc.nt):
            inside = lo[i, j] <= q_true[i, j] <= hi[i, j]
            marks.append("." if inside else "X")
        lines.append("   truth-in-CI per instant: " + "".join(marks))
    write_report("fig4_forecast", "\n".join(lines))

    assert cov >= 0.8
    assert result.forecast_error() < 0.2


def test_fig4_exceedance_probabilities(bench_twin, benchmark):
    """Exceedance maps: the quantity the alerting layer consumes."""
    twin, result = bench_twin
    fc = result.forecast
    peak = float(np.abs(fc.mean).max())

    p = benchmark(fc.exceedance_probability, 0.5 * peak)
    assert p.shape == fc.mean.shape
    assert np.all((p >= 0) & (p <= 1))
    # the threshold at half the predicted peak must be exceeded somewhere
    assert p.max() > 0.5
