"""Streaming latency sweep: incremental engine vs seed per-horizon re-solves.

The seed streaming path re-solved dense triangular systems from scratch at
every partial-data horizon, so a full ``warning_latency`` sweep cost
``O(sum_k (k Nd)^2 Nt Nq)``.  The incremental engine
(:mod:`repro.inference.streaming`) extends the forward-substituted states
``Y = L^{-1} B`` and ``w = L^{-1} d`` one observation slot at a time — one
``Nd x Nd`` block solve + one gemm + one rank-``Nd`` covariance downdate
per slot — bringing the whole sweep down to about one full-horizon solve.

Asserted: >= 5x wall-clock speedup over the seed path for the all-horizons
fleet sweep at Nt = 64 (the asymptotic gap grows ~linearly with Nt).

Run standalone (the CI smoke path) or under pytest::

    PYTHONPATH=src python benchmarks/bench_streaming_sweep.py [--tiny]
    PYTHONPATH=src python -m pytest benchmarks/bench_streaming_sweep.py -q
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Dict

import numpy as np
import scipy.linalg as sla

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from conftest import write_report  # noqa: E402

from repro.inference.streaming import IncrementalStreamingPosterior  # noqa: E402
from repro.serve import ScenarioBank  # noqa: E402
from repro.twin import CascadiaTwin, TwinConfig  # noqa: E402

FULL = dict(nt=64, nx=8, nd=8, nq=3, streams=16, repeats=3)
TINY = dict(nt=12, nx=6, nd=6, nq=2, streams=4, repeats=1)
MIN_SPEEDUP = 5.0


def _build(nt: int, nx: int, nd: int, nq: int, streams: int):
    cfg = TwinConfig.demo_2d(nx=nx, n_slots=nt, n_sensors=nd, n_qoi=nq)
    twin = CascadiaTwin(cfg).setup()
    twin.phase1()
    bank = ScenarioBank(twin.operator.bottom_trace, cfg.n_slots, cfg.dt_obs, seed=13)
    bank.generate(streams)
    _, noise, d_obs = bank.observation_batch(twin.F, noise_relative=cfg.noise_relative)
    inv = twin.phase23(noise)
    return inv, d_obs


def seed_sweep(inv, D):
    """The pre-engine path: per horizon, re-solve the truncated systems.

    Exactly what the seed ``partial_qoi_operators`` + fleet gemm did — two
    dense triangular solves of size ``k Nd`` against ``Nt Nq`` right-hand
    sides at *every* horizon, then the per-horizon data-to-QoI gemm.
    """
    L = inv.cholesky_lower
    nt, nd = inv.nt, inv.nd
    means = None
    cov = None
    for k in range(1, nt + 1):
        n = k * nd
        Lk = L[:n, :n]
        Bk = inv.B[:n, :]
        y = sla.solve_triangular(Lk, Bk, lower=True)
        KinvB = sla.solve_triangular(Lk, y, lower=True, trans="T")
        cov = inv.Pq - Bk.T @ KinvB
        means = KinvB.T @ D[:k].reshape(n, -1)
    return means, 0.5 * (cov + cov.T)


def incremental_sweep(inv, D):
    """The engine path: advance the whole fleet one slot at a time."""
    engine = IncrementalStreamingPosterior(inv)  # fresh state: time everything
    fleet = engine.open_fleet(D)
    means = None
    cov = None
    for k in range(1, inv.nt + 1):
        fleet.advance(k)
        means = fleet.forecast_means()
        cov = engine.covariance_at(k)
    return means, cov


def _best_of(fn, repeats):
    out = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        out.append(time.perf_counter() - t0)
    return min(out), result


def run_bench(
    nt: int, nx: int, nd: int, nq: int, streams: int, repeats: int
) -> Dict[str, float]:
    inv, d_obs = _build(nt, nx, nd, nq, streams)
    t_seed, (m_seed, c_seed) = _best_of(lambda: seed_sweep(inv, d_obs), repeats)
    t_inc, (m_inc, c_inc) = _best_of(lambda: incremental_sweep(inv, d_obs), repeats)

    # Both sweeps end at the full horizon with identical posteriors.
    scale = max(float(np.abs(m_seed).max()), 1e-30)
    mean_err = float(np.abs(m_inc - m_seed).max()) / scale
    cov_err = float(np.abs(np.asarray(c_inc) - c_seed).max())
    assert mean_err < 1e-10, f"sweep means diverged: {mean_err:.2e}"
    assert cov_err < 1e-10, f"sweep covariances diverged: {cov_err:.2e}"

    speedup = t_seed / t_inc
    lines = [
        "STREAMING SWEEP - incremental engine vs per-horizon re-solves",
        f"problem: Nt={nt} Nd={nd} Nq={nq} nx={nx}, "
        f"{streams} streams, all {nt} horizons",
        f"{'path':<38s} {'time':>12s}",
        f"{'seed (re-solve every horizon)':<38s} {t_seed * 1e3:>10.2f} ms",
        f"{'incremental (one slot per step)':<38s} {t_inc * 1e3:>10.2f} ms",
        f"speedup: {speedup:.1f}x   "
        f"(final-horizon agreement: mean {mean_err:.1e}, cov {cov_err:.1e})",
    ]
    write_report("streaming_sweep", "\n".join(lines))
    return {"t_seed": t_seed, "t_incremental": t_inc, "speedup": speedup}


def test_incremental_sweep_speedup():
    r = run_bench(**FULL)
    assert r["speedup"] >= MIN_SPEEDUP, (
        f"incremental sweep speedup {r['speedup']:.2f}x < {MIN_SPEEDUP}x"
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--tiny",
        action="store_true",
        help="smoke-test sizes (CI): correctness cross-check only, no "
        "speedup assertion",
    )
    args = ap.parse_args()
    r = run_bench(**(TINY if args.tiny else FULL))
    if not args.tiny and r["speedup"] < MIN_SPEEDUP:
        raise SystemExit(f"speedup {r['speedup']:.2f}x < {MIN_SPEEDUP}x")


if __name__ == "__main__":
    main()
