"""Section VIII ablation: forecast skill vs offshore sensor coverage.

The paper's implication section notes the framework is "limited by the
sparsity of offshore sensors currently available in the CSZ".  This
ablation quantifies that at reduced scale: reconstruction error, forecast
error, and posterior uncertainty as the sensor count grows, plus the
streaming warning latency (how many seconds of data the alert needs).
"""

import numpy as np
import pytest

from conftest import write_report

from repro.twin.cascadia import CascadiaTwin
from repro.twin.config import TwinConfig
from repro.twin.earlywarning import StreamingInverter


def test_sensor_count_ablation(benchmark):
    counts = [3, 6, 12, 24]
    rows = []
    for ns in counts:
        twin = CascadiaTwin(
            TwinConfig.demo_2d(nx=16, n_slots=20, n_sensors=ns, n_qoi=4)
        )
        res = twin.run_end_to_end()
        stream = StreamingInverter(twin.inversion)
        peak = float(np.abs(res.q_true).max())
        fired, _ = stream.warning_latency(
            res.d_obs, 0.1 * peak, 0.25 * peak, 0.5 * peak
        )
        rows.append(
            (
                ns,
                res.parameter_error(),
                res.forecast_error(),
                float(np.mean(res.displacement_std)),
                fired if fired is not None else -1,
            )
        )

    benchmark(lambda: None)

    lines = [
        "SECTION VIII ablation - skill vs sensor coverage",
        f"{'sensors':>8s} {'param err':>10s} {'fcst err':>9s} "
        f"{'mean std':>9s} {'alert@slot':>11s}",
    ]
    for ns, pe, fe, sd, fired in rows:
        lines.append(
            f"{ns:>8d} {pe:>10.3f} {fe:>9.3f} {sd:>9.4f} {fired:>11d}"
        )
    write_report("ablation_sensors", "\n".join(lines))

    # More sensors: better reconstruction and tighter posteriors.
    errs = [r[1] for r in rows]
    stds = [r[3] for r in rows]
    assert errs[-1] < errs[0]
    assert stds[-1] < stds[0]
    assert all(s2 <= s1 + 1e-12 for s1, s2 in zip(stds, stds[1:]))


def test_noise_level_ablation(benchmark):
    """Companion sweep: skill vs observation noise at fixed sensors."""
    levels = [0.1, 0.03, 0.01]
    rows = []
    for rel in levels:
        twin = CascadiaTwin(
            TwinConfig.demo_2d(nx=16, n_slots=16, n_sensors=12, noise_relative=rel)
        )
        res = twin.run_end_to_end()
        rows.append((rel, res.parameter_error(), float(np.mean(res.displacement_std))))
    benchmark(lambda: None)
    lines = [
        "ABLATION - skill vs noise level (12 sensors)",
        f"{'noise':>8s} {'param err':>10s} {'mean std':>9s}",
    ]
    for rel, pe, sd in rows:
        lines.append(f"{rel:>8.2f} {pe:>10.3f} {sd:>9.4f}")
    write_report("ablation_noise", "\n".join(lines))
    assert rows[-1][1] < rows[0][1]
    assert rows[-1][2] < rows[0][2]


def test_optimal_placement_ablation(benchmark):
    """Extension: greedy A-optimal design vs evenly-spaced sensors.

    The data-space machinery makes Bayesian experimental design cheap:
    candidates cost one batched adjoint solve, then every subset objective
    is a small dense solve.  Greedy selection must dominate the
    evenly-spaced layout at every budget.
    """
    import numpy as np

    from repro.twin import CascadiaTwin, GreedySensorPlacement, TwinConfig

    twin = CascadiaTwin(TwinConfig.demo_2d(nx=16, n_slots=16, n_sensors=4))
    twin.setup()
    twin.phase1()
    lo, hi = twin.mesh.bounding_box()
    cand = np.linspace(lo[0] + 0.3, hi[0] - 0.3, 16)[:, None]
    gp = GreedySensorPlacement(
        twin.propagator, cand, twin.Fq, twin.prior, noise_sigma=0.005
    )
    benchmark.pedantic(lambda: gp.select(3), iterations=1, rounds=2)

    lines = [
        "EXTENSION - greedy A-optimal sensor placement",
        f"{'budget':>7s} {'greedy tr(cov)':>15s} {'regular tr(cov)':>16s} {'gain':>7s}",
    ]
    for k in (2, 4, 6):
        g, r = gp.compare_with_regular(k)
        lines.append(f"{k:>7d} {g:>15.5f} {r:>16.5f} {r / g:>6.2f}x")
        assert g <= r + 1e-12
    res = gp.select(6)
    lines.append(
        f"greedy-6 positions: {np.round(res.positions.ravel(), 2).tolist()}"
        f"  (variance reduction {100 * res.reduction():.1f}%)"
    )
    write_report("ablation_placement", "\n".join(lines))
