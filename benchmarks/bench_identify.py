"""Scenario-identification sweep: incremental evidence vs from-scratch log-pdfs.

Ranking every incoming stream against a scenario bank at every horizon
means evaluating the truncated-data Gaussian model evidence
``log p(d_k | s) = log N(d_k; mu_{s,k}, K_k)`` for all (stream, scenario,
horizon) triples.  The from-scratch route pays two triangular solves of
size ``k Nd`` against ``n_streams * n_scenarios`` right-hand sides at
*every* horizon — ``O(sum_k (k Nd)^2 J S)`` over a sweep.  The streaming
identifier (:mod:`repro.serve.identify`) accumulates the same quantities
from the nested forward-substituted states: per slot, one ``Nd``-block
fleet solve plus one ``(Nd, J) x (Nd, S)`` cross-term gemm — ``O(Nd)`` per
slot per (stream, scenario) pair, about ``Nt`` times less work.

Asserted: >= 5x wall-clock speedup at Nt = 64 on a 16-scenario bank (the
gap grows ~linearly with Nt), with identical evidences to ~1e-10.

Additionally, the streaming sweep is re-run once per *available* array
backend (``repro.backend``: numpy always; torch when importable) and each
measured time is priced against that backend's online roofline
(:data:`repro.hpc.perfmodel.ONLINE_ROOFLINES`): the JSON report carries a
``backends`` section with the achieved fraction-of-attainable per
backend, so regressions in kernel routing show up as an efficiency drop
rather than only as a raw-time change.

Run standalone (the CI smoke path) or under pytest::

    PYTHONPATH=src python benchmarks/bench_identify.py [--tiny]
    PYTHONPATH=src python -m pytest benchmarks/bench_identify.py -q
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Dict

import numpy as np
import scipy.linalg as sla

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from conftest import write_json, write_report  # noqa: E402

from repro.backend import available_backends  # noqa: E402
from repro.hpc.perfmodel import gemm_spec, roofline_for, trsm_spec  # noqa: E402
from repro.serve import ScenarioBank, ScenarioIdentifier  # noqa: E402
from repro.twin import CascadiaTwin, TwinConfig  # noqa: E402

FULL = dict(nt=64, nx=8, nd=8, nq=3, scenarios=16, streams=8, repeats=3)
TINY = dict(nt=10, nx=6, nd=6, nq=2, scenarios=5, streams=3, repeats=1)
MIN_SPEEDUP = 5.0
LOG_2PI = float(np.log(2.0 * np.pi))


def _build(nt: int, nx: int, nd: int, nq: int, scenarios: int, streams: int):
    cfg = TwinConfig.demo_2d(nx=nx, n_slots=nt, n_sensors=nd, n_qoi=nq)
    twin = CascadiaTwin(cfg).setup()
    twin.phase1()
    bank = ScenarioBank(twin.operator.bottom_trace, cfg.n_slots, cfg.dt_obs, seed=29)
    bank.generate(scenarios)
    d_clean, noise, d_obs = bank.observation_batch(
        twin.F, noise_relative=cfg.noise_relative
    )
    inv = twin.phase23(noise)
    # Bank-side identification state is built once per (geometry, bank) and
    # amortized over every later fleet — an offline cost like the Cholesky
    # factor itself, which neither timed path pays either.
    identifier = ScenarioIdentifier.from_bank(inv.streaming_state(), bank)
    return inv, bank, identifier, d_obs[:, :, :streams]


def scratch_sweep(inv, bank_mu_flat, D):
    """From-scratch evidences: per horizon, solve the truncated systems anew.

    Exactly what a non-streaming identifier would do — residuals
    ``d_k - mu_{s,k}`` whitened by a fresh ``L_k`` triangular solve at
    every horizon for every (stream, scenario) pair, plus the per-horizon
    log-determinant, with no reuse across horizons.
    """
    L = inv.cholesky_lower
    nt, nd = inv.nt, inv.nd
    J, S = D.shape[2], bank_mu_flat.shape[1]
    Df = D.reshape(nt * nd, J)
    ev = None
    for k in range(1, nt + 1):
        n = k * nd
        resid = (Df[:n, :, None] - bank_mu_flat[:n, None, :]).reshape(n, J * S)
        white = sla.solve_triangular(L[:n, :n], resid, lower=True)
        quad = np.einsum("ij,ij->j", white, white).reshape(J, S)
        logdet = 2.0 * float(np.sum(np.log(np.diag(L)[:n])))
        ev = -0.5 * (quad + logdet + n * LOG_2PI)
    return ev


def streaming_sweep(identifier, D):
    """The identifier path: a fresh session advanced one slot at a time.

    The per-fleet online cost: fresh per-stream states and cross terms
    (sessions are opened per incoming fleet), accumulated slot by slot
    against the shared bank-side state.
    """
    session = identifier.open(D)
    ev = None
    for k in range(1, identifier.engine.nt + 1):
        session.advance(k)
        ev = session.log_evidence()
    return ev


def _sweep_spec(nt: int, nd: int, nb: int, J: int, S: int):
    """Analytic kernel footprint of one full streaming identification sweep.

    Per absorbed slot ``s``: the fleet-advance gemm against the rows
    already computed, the ``Nd x Nd`` blocked trsm, the running-mean
    accumulation gemm, and the evidence cross-term gemm against the bank.
    Matches the actual calls in ``StreamingFleet.advance`` and
    ``IdentificationSession._fold_new_slots``.
    """
    spec = trsm_spec(nd, J)  # slot 0 has no history gemm
    spec = spec + gemm_spec(nb, J, nd) + gemm_spec(J, S, nd)
    for s in range(1, nt):
        spec = spec + gemm_spec(nd, J, s * nd)  # history gemm
        spec = spec + trsm_spec(nd, J)  # diagonal-block solve
        spec = spec + gemm_spec(nb, J, nd)  # means: Y^T w_new
        spec = spec + gemm_spec(J, S, nd)  # cross terms vs the bank
    return spec


def _constructible_backends():
    """Backend names the local interpreter can actually run (CPU only)."""
    names = []
    for name in available_backends():
        if name == "cupy":  # CUDA-only; detection != a usable device
            continue
        try:
            from repro.backend import get_backend

            get_backend(name)
        except Exception:  # noqa: BLE001 - e.g. torch without a device
            continue
        names.append(name)
    return names


def backend_roofline_sweeps(inv, bank, d_obs, repeats):
    """Streaming sweep per available backend, priced against its roofline."""
    nt, nd = inv.nt, inv.nd
    J = d_obs.shape[2]
    out = {}
    for name in _constructible_backends():
        engine = inv.streaming_state(backend=name)
        identifier = ScenarioIdentifier.from_bank(engine, bank)
        S = identifier.n_scenarios
        t_sweep, ev = _best_of(lambda: streaming_sweep(identifier, d_obs), repeats)
        spec = _sweep_spec(nt, nd, engine._nb, J, S)
        roof = roofline_for(engine.backend.name)
        out[name] = {
            "device": roof.device,
            "t_sweep_ms": t_sweep * 1e3,
            "kernel_gflop": spec.flops / 1e9,
            "arithmetic_intensity": spec.arithmetic_intensity(),
            "attainable_ms": roof.attainable_seconds(spec) * 1e3,
            "fraction_of_attainable": roof.fraction_of_attainable(spec, t_sweep),
            "screen_rtol": float(engine.backend.screen_rtol),
            "evidence": ev,
        }
    return out


def _best_of(fn, repeats):
    out = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        out.append(time.perf_counter() - t0)
    return min(out), result


def run_bench(
    nt: int, nx: int, nd: int, nq: int, scenarios: int, streams: int, repeats: int
) -> Dict[str, float]:
    inv, bank, identifier, d_obs = _build(nt, nx, nd, nq, scenarios, streams)
    mu_flat = bank.clean_records(inv.F).reshape(nt * nd, -1)
    t_scratch, ev_scratch = _best_of(
        lambda: scratch_sweep(inv, mu_flat, d_obs), repeats
    )
    t_inc, ev_inc = _best_of(lambda: streaming_sweep(identifier, d_obs), repeats)

    # Both sweeps end at the full horizon with identical evidences.
    scale = max(float(np.abs(ev_scratch).max()), 1.0)
    err = float(np.abs(ev_inc - ev_scratch).max()) / scale
    assert err < 1e-10, f"evidence sweeps diverged: {err:.2e}"

    # Per-backend roofline pricing of the same sweep (numpy always; torch
    # when importable).  Every backend must reproduce the numpy evidences
    # within its declared tolerance contract.
    backends = backend_roofline_sweeps(inv, bank, d_obs, repeats)
    for name, b in backends.items():
        ev_b = b.pop("evidence")
        tol = max(b["screen_rtol"] * 1e3, 1e-10)
        b_err = float(np.abs(ev_b - ev_scratch).max()) / scale
        assert b_err < tol, f"{name} evidence diverged: {b_err:.2e} (tol {tol:.1e})"
        b["evidence_agreement"] = b_err

    speedup = t_scratch / t_inc
    lines = [
        "SCENARIO IDENTIFICATION - streaming evidence vs from-scratch log-pdfs",
        f"problem: Nt={nt} Nd={nd} Nq={nq} nx={nx}, "
        f"{streams} streams x {scenarios} scenarios, all {nt} horizons",
        f"{'path':<42s} {'time':>12s}",
        f"{'from-scratch (re-whiten every horizon)':<42s} {t_scratch * 1e3:>10.2f} ms",
        f"{'streaming (block solve + cross gemm/slot)':<42s} {t_inc * 1e3:>10.2f} ms",
        f"speedup: {speedup:.1f}x   (final-horizon evidence agreement: {err:.1e})",
        "",
        f"{'backend':<12s} {'sweep':>10s} {'attainable':>11s} {'roofline frac':>14s}",
    ]
    for name, b in backends.items():
        lines.append(
            f"{name:<12s} {b['t_sweep_ms']:>8.2f} ms {b['attainable_ms']:>8.2f} ms "
            f"{b['fraction_of_attainable']:>13.3f}"
        )
    write_report("identify", "\n".join(lines))
    write_json("identify", {
        "bench": "identify",
        "nt": nt,
        "nd": nd,
        "scenarios": scenarios,
        "streams": streams,
        "t_scratch_ms": t_scratch * 1e3,
        "t_incremental_ms": t_inc * 1e3,
        "speedup": speedup,
        "sweeps_per_sec": 1.0 / t_inc,
        "final_horizon_evidence_agreement": err,
        "backends": backends,
    })
    return {
        "t_scratch": t_scratch,
        "t_incremental": t_inc,
        "speedup": speedup,
        "backends": backends,
    }


def test_identification_sweep_speedup():
    r = run_bench(**FULL)
    assert r["speedup"] >= MIN_SPEEDUP, (
        f"identification sweep speedup {r['speedup']:.2f}x < {MIN_SPEEDUP}x"
    )
    # The roofline gate: the numpy sweep must report a sane achieved
    # fraction of its attainable throughput (> 0, <= 1 up to timer noise).
    frac = r["backends"]["numpy"]["fraction_of_attainable"]
    assert 0.0 < frac <= 1.5, f"numpy roofline fraction out of range: {frac}"


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--tiny",
        action="store_true",
        help="smoke-test sizes (CI): correctness cross-check only, no "
        "speedup assertion",
    )
    args = ap.parse_args()
    r = run_bench(**(TINY if args.tiny else FULL))
    if not args.tiny and r["speedup"] < MIN_SPEEDUP:
        raise SystemExit(f"speedup {r['speedup']:.2f}x < {MIN_SPEEDUP}x")


if __name__ == "__main__":
    main()
