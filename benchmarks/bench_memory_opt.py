"""Section VII-B: the memory-optimization campaign, reproduced in kind.

The paper reduced the solver footprint 5.33x (5.2 host + 30.7 device ->
1.1 + 5.64 GiB/APU) by fusing geometric factors, dropping redundant
geometry, and reusing RK4 temporaries.  The reproduction implements both
modes: the default operator stores only the fused factors + diagonals; the
``memory_optimized=False`` mode retains the full geometry chain (J, J^{-1},
detJ, coordinates at both node families, un-fused factors) and allocates
per-apply workspace.  This bench measures both ledgers.
"""

import numpy as np
import pytest

from conftest import write_report

from repro.fem.mesh import StructuredMesh
from repro.ocean.acoustic_gravity import AcousticGravityOperator
from repro.ocean.material import SeawaterMaterial
from repro.util.memory import GIB, MemoryTracker


def test_memory_optimization_ledger(benchmark, bench_rng):
    mat = SeawaterMaterial.nondimensional()
    mesh = StructuredMesh.ocean(
        [np.linspace(0, 8, 65)], nz=6, depth=lambda x: 0.9 + 0.1 * np.sin(x)
    )

    def build(optimized: bool) -> AcousticGravityOperator:
        return AcousticGravityOperator(
            mesh, order=4, material=mat,
            kernel_variant="fused" if optimized else "shared",
            memory_optimized=optimized,
        )

    op_opt = build(True)
    op_base = build(False)

    # Exercise both so transient ledgers populate.
    X = bench_rng.standard_normal((op_opt.nstate, 1))
    op_opt.apply(X)
    op_base.apply(X)
    benchmark(lambda: op_opt.apply(X))

    p_opt = op_opt.tracker.total_persistent
    p_base = op_base.tracker.total_persistent
    t_base = op_base.tracker.peak_transient
    ratio = (p_base + t_base) / p_opt

    lines = [
        "SECTION VII-B analogue - solver memory optimization",
        f"{'mode':<22s} {'persistent':>14s} {'peak transient':>16s}",
        f"{'un-optimized':<22s} {p_base / GIB:>12.6f} G {t_base / GIB:>14.6f} G",
        f"{'optimized':<22s} {p_opt / GIB:>12.6f} G {0.0:>14.6f} G",
        "",
        f"reduction: {ratio:.2f}x   (paper: 5.33x, from 35.9 to 6.74 GiB/APU)",
        "",
        "optimized-mode persistent breakdown:",
    ]
    for name, b in sorted(op_opt.tracker.persistent.items()):
        lines.append(f"  {name:<32s} {b / 1e6:10.3f} MB")
    write_report("memory_opt", "\n".join(lines))

    assert ratio > 2.0, "optimization must reduce the footprint severalfold"
    # both modes produce identical physics
    np.testing.assert_allclose(
        op_opt.apply(X), op_base.apply(X), atol=1e-11 * np.abs(X).max()
    )


def test_dof_normalized_footprint(benchmark):
    """Bytes per DOF of the optimized operator (the paper's O(1)/DOF claim)."""
    mat = SeawaterMaterial.nondimensional()
    rows = ["bytes/DOF of the optimized operator vs mesh size:"]
    per_dof = []
    for nx in (16, 32, 64):
        mesh = StructuredMesh.ocean(
            [np.linspace(0, 8, nx + 1)], nz=4, depth=lambda x: 0.9 + 0.05 * x / 8
        )
        tracker = MemoryTracker()
        op = AcousticGravityOperator(
            mesh, order=4, material=mat, memory_optimized=True, tracker=tracker
        )
        bpd = tracker.total_persistent / op.nstate
        per_dof.append(bpd)
        rows.append(f"  nx={nx:<4d} state DOF {op.nstate:>8,d}   {bpd:8.1f} B/DOF")
    benchmark(lambda: None)
    write_report("memory_per_dof", "\n".join(rows))
    # Partial assembly stores O(1) per DOF: the ratio must stay bounded.
    assert max(per_dof) < 1.5 * min(per_dof)
