"""Fig. 3: truth vs inferred seafloor displacement and posterior uncertainty.

Regenerates the content of the paper's Fig. 3 panels (d)-(e) at reduced
scale: the inferred (MAP) seafloor displacement field against the dynamic-
rupture-analogue truth, and the pointwise posterior standard deviation of
the displacement.  Asserts the shape claims: faithful reconstruction inside
the sensor network, uncertainty growing toward the array edges, truth
bracketed by the uncertainty band.
"""

import numpy as np
import pytest

from conftest import write_report


def _ascii_profile(x, values, width=56, height=8, label=""):
    """Tiny ASCII rendering of a 1D field (the Fig. 3 panel stand-in)."""
    v = np.asarray(values)
    lo, hi = float(v.min()), float(v.max())
    span = hi - lo if hi > lo else 1.0
    cols = np.interp(np.linspace(x.min(), x.max(), width), x, v)
    rows = []
    for r in range(height, -1, -1):
        thresh = lo + span * r / height
        rows.append(
            "".join("#" if c >= thresh else " " for c in cols)
        )
    return f"{label} [{lo:+.3f}, {hi:+.3f}]\n" + "\n".join(rows)


def test_fig3_inversion_quality(bench_twin, benchmark):
    twin, result = bench_twin
    x = twin.operator.bottom_trace.coords[:, 0]
    truth = result.scenario.displacement
    recon = result.displacement_map
    std = result.displacement_std

    def errors():
        return {
            "param": result.parameter_error(),
            "disp": result.displacement_error(),
        }

    errs = benchmark(errors)

    inside = std <= np.median(std)  # well-instrumented region
    err_field = np.abs(recon - truth)
    bracketing = float(np.mean(err_field <= 3.0 * std + 1e-12))

    lines = [
        "FIG. 3 analogue - seafloor displacement inversion (reduced scale)",
        f"relative L2 error, spatiotemporal velocity m: {errs['param']:.3f}",
        f"relative L2 error, final displacement:        {errs['disp']:.3f}",
        f"fraction of truth within 3 posterior std:     {bracketing:.3f}",
        f"posterior std range: [{std.min():.4f}, {std.max():.4f}] "
        f"(prior std {twin.config.prior_sigma})",
        "",
        _ascii_profile(x, truth, label="true displacement (Fig. 3a/d truth)"),
        "",
        _ascii_profile(x, recon, label="inferred MAP displacement (Fig. 3d)"),
        "",
        _ascii_profile(x, std, label="pointwise posterior std (Fig. 3e)"),
    ]
    write_report("fig3_inversion", "\n".join(lines))

    assert errs["disp"] < 0.4
    assert bracketing > 0.8
    # posterior tightens relative to the prior where instrumented
    assert std[inside].mean() < twin.config.prior_sigma


def test_fig3_posterior_sampling(bench_twin, benchmark):
    """Posterior draws (Matheron) scatter around the MAP displacement."""
    twin, result = bench_twin
    sampler = twin.sampler()
    rng = np.random.default_rng(0)

    draws = benchmark.pedantic(
        lambda: sampler.sample_displacement(
            result.d_obs, rng, k=64, dt_obs=twin.config.dt_obs
        ),
        iterations=1,
        rounds=3,
    )
    spread = draws.std(axis=1)
    # sample spread consistent with the exact posterior std (loose MC bound)
    ratio = spread / np.maximum(result.displacement_std, 1e-12)
    assert 0.5 < np.median(ratio) < 2.0
