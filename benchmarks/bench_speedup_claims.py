"""Section IV / VII-C speedup claims, measured at our scale + paper model.

The paper's headline ratios:

* SoA CG would need ~N_d N_t iterations x 2 PDE solves -> 50 years;
* Phase 1 needs only N_d + N_q solves -> ~810x fewer PDE solves;
* an FFT Hessian matvec replaces a forward/adjoint PDE pair -> 260,000x;
* the online solve vs SoA CG -> ~10^10.

Every ingredient is *measured* on the reduced problem: one real adjoint
solve, one real forward/adjoint PDE pair, one real FFT matvec, the real
online solve, and the real CG iteration count.  The CG iterations are
counted with the (bitwise-identical-iteration) FFT-backed Hessian — CG's
trajectory depends only on the operator, not on how its action is computed
— and a short PDE-mode CG run cross-checks that equivalence before the
SoA cost is projected as ``iterations x 2 x t_pde``.
"""

import time

import numpy as np
import pytest

from conftest import write_report

from repro.baselines.cg import (
    fft_hessian_operator,
    pde_hessian_operator,
    solve_map_cg,
)
from repro.baselines.costmodel import MeasuredDemoCosts, SoACostModel


def test_speedup_claims(bench_twin, benchmark):
    twin, result = bench_twin
    prop, sensors = twin.propagator, twin.sensors
    noise = twin.inversion.noise
    d = result.d_obs

    # --- measured: one adjoint PDE solve (per-sensor share of Phase 1) ---
    t0 = time.perf_counter()
    prop.p2o_kernel(sensors)
    pde_solve_s = (time.perf_counter() - t0) / sensors.n

    # --- measured: one forward/adjoint PDE pair (a true Hessian matvec) --
    m_probe = result.m_map
    t0 = time.perf_counter()
    prop.apply_p2o(m_probe, sensors)
    prop.apply_p2o_transpose(d, sensors)
    pde_pair_s = time.perf_counter() - t0

    # --- measured: one FFT Hessian matvec -------------------------------
    twin.inversion.hessian_data_action(d)  # warm-up
    t0 = time.perf_counter()
    n_rep = 50
    for _ in range(n_rep):
        twin.inversion.hessian_data_action(d)
    fft_matvec_s = (time.perf_counter() - t0) / n_rep

    # --- measured: online solve ------------------------------------------
    t0 = time.perf_counter()
    for _ in range(10):
        twin.inversion.infer_and_predict(d)
    online_s = (time.perf_counter() - t0) / 10

    # --- measured: CG iteration count ------------------------------------
    # Full count with FFT-backed actions (identical CG trajectory), then a
    # truncated PDE-mode run to confirm the iterates coincide.
    Hf = fft_hessian_operator(twin.F, twin.prior, noise)
    res_f = solve_map_cg(Hf, d, rtol=1e-8)
    Hp = pde_hessian_operator(prop, sensors, twin.prior, noise)
    res_p = solve_map_cg(Hp, d, rtol=1e-8, maxiter=5)
    drift = np.abs(
        np.array(res_p.residuals[: 6]) - np.array(res_f.residuals[: 6])
    ).max() / res_f.residuals[0]
    assert drift < 1e-9, "PDE-mode and FFT-mode CG must follow the same path"

    measured = MeasuredDemoCosts(
        n_sensors=sensors.n,
        n_qoi=twin.qoi.n,
        nt=twin.config.n_slots,
        pde_solve_seconds=pde_solve_s,
        fft_matvec_seconds=fft_matvec_s,
        online_seconds=online_s,
        cg_iterations=res_f.iterations,
    )
    model = SoACostModel()
    ms = measured.summary()
    matvec_speedup_measured = pde_pair_s / fft_matvec_s

    benchmark(lambda: twin.inversion.hessian_data_action(d))

    lines = [
        "SPEEDUP CLAIMS - measured at reduced scale vs paper-scale model",
        "",
        "measured ingredients:",
        f"  PDE adjoint solve       {pde_solve_s * 1e3:10.2f} ms   (paper: 52 min on 512 A100)",
        f"  PDE fwd/adj pair        {pde_pair_s * 1e3:10.2f} ms   (paper: 104 min)",
        f"  FFT Hessian matvec      {fft_matvec_s * 1e3:10.3f} ms   (paper: 24 ms)",
        f"  online infer+predict    {online_s * 1e3:10.3f} ms   (paper: < 0.2 s)",
        f"  CG iterations to 1e-8   {res_f.iterations:10d}      (paper: O(Nd*Nt) = O(252,000))",
        f"  data dimension          {sensors.n * twin.config.n_slots:10d}",
        "",
        "measured ratios:",
        f"  Hessian matvec speedup  {matvec_speedup_measured:12,.0f}x  (paper: 260,000x)",
        f"  PDE-solve reduction     {ms['pde_solve_reduction']:12.1f}x  (paper: ~810x)",
        f"  online speedup          {ms['online_speedup']:12,.0f}x  (paper: ~1e10)",
        f"  (SoA projected: {measured.soa_seconds():.1f} s of PDE-CG vs "
        f"{online_s * 1e3:.1f} ms online)",
        "",
        "paper-scale projection from the paper's own constants:",
        model.report(),
    ]
    write_report("speedup_claims", "\n".join(lines))

    # Shape assertions: every ratio favors the framework, strongly.
    assert matvec_speedup_measured > 20
    assert ms["pde_solve_reduction"] > 5
    assert ms["online_speedup"] > 1000
    # CG iteration count is a large fraction of the data dimension.
    assert res_f.iterations > 0.25 * sensors.n * twin.config.n_slots
    # Paper-scale model reproduces the published numbers.
    s = model.summary()
    assert s["soa_cg_years"] == pytest.approx(50.0, rel=0.05)
    assert s["pde_solve_reduction"] == pytest.approx(810.0, rel=0.01)
    assert s["matvec_speedup"] == pytest.approx(260_000.0, rel=0.001)
    assert 5e9 < s["online_speedup"] < 2e10
