"""Section IV ablation: why low-rank methods fail for this p2o map.

Computes the exact spectrum of the prior-preconditioned data-misfit Hessian
for (a) the tsunami wave problem and (b) a matched diffusive contrast
problem, then runs the randomized low-rank posterior on both at a sweep of
ranks.  Shape claims: the wave spectrum's effective rank is ~ the full data
dimension (paper: "nearly of the order of the data dimension"); the
diffusive spectrum decays far faster; the low-rank MAP error for the wave
problem stays orders of magnitude above the diffusive one at every rank.
"""

import numpy as np
import pytest

from conftest import write_report

from repro.baselines.diffusive import diffusive_p2o_operator
from repro.baselines.lowrank import LowRankPosterior
from repro.baselines.spectrum import (
    effective_rank,
    misfit_hessian_spectrum,
    spectrum_report,
)
from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.noise import NoiseModel
from repro.inference.prior import BiLaplacianPrior, SpatioTemporalPrior


def test_spectrum_and_lowrank_ablation(bench_twin, benchmark, bench_rng):
    twin, result = bench_twin
    F, prior, noise = twin.F, twin.prior, twin.inversion.noise
    n_data = F.nt * F.n_out

    K_misfit = twin.inversion.K - np.diag(noise.flat_variance())
    eigs_wave = benchmark(
        lambda: misfit_hessian_spectrum(F, prior, noise, K_misfit=K_misfit)
    )

    # Matched diffusive contrast problem.
    Fd, _ = diffusive_p2o_operator(
        n_grid=F.n_in, n_sensors=F.n_out, nt=F.nt, dt_obs=0.3, diffusivity=0.5
    )
    spd = BiLaplacianPrior.from_correlation(
        [np.linspace(0, 1, F.n_in)], sigma=0.3, correlation_length=0.08
    )
    priord = SpatioTemporalPrior(spd, F.nt)
    md = priord.sample(np.random.default_rng(3), 1)[:, :, 0]
    dd_clean = Fd.matvec(md)
    noised = NoiseModel.relative(dd_clean, 0.01)
    eigs_diff = misfit_hessian_spectrum(Fd, priord, noised)

    r_wave, frac_wave, row_w = spectrum_report(eigs_wave, n_data, "wave (tsunami)")
    r_diff, frac_diff, row_d = spectrum_report(eigs_diff, n_data, "diffusive contrast")

    # Low-rank MAP error sweep.
    d_obs = result.d_obs
    m_map = twin.inversion.infer(d_obs)
    invd = ToeplitzBayesianInversion(Fd, priord, noised)
    invd.assemble_data_space_hessian(method="direct")
    dd_obs = noised.add_to(dd_clean, np.random.default_rng(0))
    md_map = invd.infer(dd_obs)

    ranks = [n_data // 8, n_data // 4, n_data // 2]
    sweep = []
    for r in ranks:
        lw = LowRankPosterior(F, prior, noise, rank=r, rng=np.random.default_rng(1))
        ew = float(np.linalg.norm(lw.map_estimate(d_obs) - m_map) / np.linalg.norm(m_map))
        ld = LowRankPosterior(Fd, priord, noised, rank=r, rng=np.random.default_rng(1))
        ed = float(
            np.linalg.norm(ld.map_estimate(dd_obs) - md_map) / np.linalg.norm(md_map)
        )
        sweep.append((r, ew, ed))

    deciles = np.linspace(0, n_data - 1, 9).astype(int)
    lines = [
        "SECTION IV ablation - spectra and low-rank failure",
        row_w,
        row_d,
        "",
        "normalized spectra (lambda_i / lambda_1) at spectrum deciles:",
        "  index:     " + "".join(f"{i:>10d}" for i in deciles),
        "  wave:      " + "".join(f"{eigs_wave[i] / eigs_wave[0]:>10.2e}" for i in deciles),
        "  diffusive: " + "".join(f"{eigs_diff[i] / eigs_diff[0]:>10.2e}" for i in deciles),
        "",
        "low-rank MAP relative error vs retained rank:",
        f"  {'rank':>6s} {'wave':>12s} {'diffusive':>12s} {'ratio':>8s}",
    ]
    for r, ew, ed in sweep:
        lines.append(f"  {r:>6d} {ew:>12.3g} {ed:>12.3g} {ew / ed:>8.1f}x")
    write_report("ablation_spectrum", "\n".join(lines))

    # The paper's structural claims.
    assert frac_wave > 0.9, "wave effective rank ~ data dimension"
    for r, ew, ed in sweep:
        assert ew > 3 * ed, f"wave must be much harder at rank {r}"
    # The diffusive spectrum decays much faster in the bulk.
    mid = n_data // 2
    assert eigs_diff[mid] / eigs_diff[0] < eigs_wave[mid] / eigs_wave[0]


def test_temporal_prior_ablation(bench_twin, benchmark):
    """Extension ablation: AR(1) temporal prior correlation.

    Temporal correlation adds information (smoother truth), tightening the
    posterior relative to the independent-slot default.
    """
    twin, result = bench_twin
    from repro.inference.posterior import posterior_displacement_variance

    F, noise = twin.F, twin.inversion.noise
    sp = twin.prior.spatial
    var_indep = posterior_displacement_variance(twin.inversion, twin.config.dt_obs)

    prior_t = SpatioTemporalPrior(sp, twin.config.n_slots, temporal_rho=0.6)
    inv_t = ToeplitzBayesianInversion(F, prior_t, noise, Fq=twin.Fq)
    benchmark.pedantic(
        lambda: inv_t.assemble_data_space_hessian(method="fft", chunk=128),
        iterations=1,
        rounds=1,
    )
    var_t = posterior_displacement_variance(inv_t, twin.config.dt_obs)

    lines = [
        "ABLATION - temporal prior correlation (extension)",
        f"mean displacement posterior var, independent slots: {var_indep.mean():.5f}",
        f"mean displacement posterior var, AR(1) rho=0.6:     {var_t.mean():.5f}",
        "(prior correlation in time increases the prior displacement",
        " variance but also couples observations across slots)",
    ]
    write_report("ablation_temporal_prior", "\n".join(lines))
    assert np.all(np.isfinite(var_t)) and np.all(var_t >= 0)


def test_rom_nwidth_ablation(bench_twin, benchmark):
    """Section IV's third dismissal: ROMs vs the Kolmogorov N-width.

    Identical discrete-time POD-Galerkin construction on the wave problem
    and a matched diffusion problem: diffusion compresses to a handful of
    modes, the wave solution manifold does not (Greif & Urban's
    ``N^{-1/2}`` wall).
    """
    from repro.baselines.diffusive import diffusive_rom_study
    from repro.baselines.rom import (
        PODReducedModel,
        pod_energy_spectrum,
        snapshot_matrix,
    )

    twin, _ = bench_twin
    prop, sensors, op = twin.propagator, twin.sensors, twin.operator

    snaps = benchmark.pedantic(
        lambda: snapshot_matrix(prop, n_trajectories=5, seed=0),
        iterations=1, rounds=1,
    )
    sv_wave = pod_energy_spectrum(snaps)
    sv_diff, diff_err = diffusive_rom_study(
        n_grid=op.n_parameters, n_sensors=sensors.n, nt=prop.n_slots,
        n_trajectories=5,
    )

    rng = np.random.default_rng(11)
    m = rng.standard_normal((prop.n_slots, op.n_parameters))
    for j in range(1, prop.n_slots):
        m[j] = 0.6 * m[j - 1] + 0.4 * m[j]

    ranks = (5, 10, 20, 40)
    rows = []
    for r in ranks:
        rom = PODReducedModel.build(prop, snaps, rank=r)
        rows.append((r, rom.relative_observation_error(m, sensors), diff_err(r)))

    nq = min(sv_wave.size, sv_diff.size)
    qs = [0, nq // 4, nq // 2, 3 * nq // 4]
    lines = [
        "SECTION IV ablation - ROM / Kolmogorov N-width",
        "normalized snapshot singular values (the practical N-width):",
        "  index:     " + "".join(f"{i:>10d}" for i in qs),
        "  wave:      " + "".join(f"{sv_wave[i] / sv_wave[0]:>10.2e}" for i in qs),
        "  diffusion: " + "".join(f"{sv_diff[i] / sv_diff[0]:>10.2e}" for i in qs),
        "",
        "POD-Galerkin ROM relative observation error (held-out forcing):",
        f"  {'rank':>6s} {'wave':>10s} {'diffusion':>10s}",
    ]
    for r, ew, ed in rows:
        lines.append(f"  {r:>6d} {ew:>10.3f} {ed:>10.4f}")
    lines.append(
        "\n(paper: 'efficient ROMs for high-frequency wave propagation are"
        " not viable\n due to the Kolmogorov N-width problem' - measured:"
        " the identical ROM that\n reaches percent-level accuracy on"
        " diffusion stays O(1)-wrong on the wave.)"
    )
    write_report("ablation_rom_nwidth", "\n".join(lines))

    # Shape assertions.
    assert sv_diff[nq // 4] / sv_diff[0] < 0.1 * sv_wave[nq // 4] / sv_wave[0]
    for r, ew, ed in rows:
        assert ew > 3 * ed, f"wave ROM must be far worse at rank {r}"
