"""Replicated-shard failover: latency under kills, R=1 vs R=2 throughput.

PR 9's tentpole makes shard loss invisible to results: with
``replication_factor=R`` each COL_BLOCK-aligned shard is adopted by R
transport channels, and the dispatcher fails over to a replica on a
send failure, EOF, or ``ErrorReply`` — in-parent recompute only when
the whole replica group is gone.  This bench prices that guarantee and
publishes the numbers CI tracks:

* **Failover latency**: scripted primary kills (``inject_fault`` at the
  transport seam — SIGKILL over shared memory) immediately before a
  request, repeated across respawn cycles; p50/p99 of the kill-request
  wall time next to the healthy p50.  Every kill request must be
  absorbed by a replica — ``failovers >= 1`` and ``workers_lost == 0``
  (the in-parent recompute fallback never runs) — with log-evidence
  bitwise-identical to the healthy run.
* **Replication tax**: sustained identify throughput at R=1 (every
  channel its own shard) vs R=2 (half the shards, two channels each)
  over the same worker fleet — the steady-state cost of holding a hot
  standby.

Results go to ``benchmarks/reports/BENCH_replication.json``
(failover_latency_p50_ms/p99_ms, healthy_latency_p50_ms,
throughput_r1_rps, throughput_r2_rps, failovers, workers_lost) —
uploaded by CI alongside the identify/fabric/orchestrator/gateway
artifacts.

Run standalone (the CI smoke path) or under pytest::

    PYTHONPATH=src python benchmarks/bench_replication.py [--tiny]
    PYTHONPATH=src python -m pytest benchmarks/bench_replication.py -q
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Dict

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from conftest import write_json, write_report  # noqa: E402

import repro.serve.sketch as sketch_mod  # noqa: E402
from repro.serve import ScenarioBank, ServingFabric  # noqa: E402
from repro.twin import CascadiaTwin, TwinConfig  # noqa: E402

FULL = dict(
    nt=24, nx=10, nd=10, nq=3, scenarios=192, streams=8,
    horizon=8, workers=4, kills=10, requests=32, col_block=None,
)
TINY = dict(
    nt=10, nx=8, nd=8, nq=3, scenarios=48, streams=4,
    horizon=5, workers=4, kills=4, requests=8, col_block=16,
)


def _build(nt, nx, nd, nq, scenarios):
    cfg = TwinConfig.demo_2d(nx=nx, n_slots=nt, n_sensors=nd, n_qoi=nq)
    twin = CascadiaTwin(cfg).setup()
    twin.phase1()
    bank = ScenarioBank(
        twin.operator.bottom_trace, cfg.n_slots, cfg.dt_obs, seed=47
    )
    bank.generate(scenarios)
    _, noise, d_obs = bank.observation_batch(
        twin.F, noise_relative=cfg.noise_relative
    )
    inv = twin.phase23(noise)
    return inv, bank, d_obs


def _fabric(inv, bank, workers, replication, streams):
    return ServingFabric(
        inv, [bank], n_workers=workers, replication_factor=replication,
        screen_min_scenarios=1, screen_top=max(4, streams),
        max_batch=streams,
    )


def _throughput(inv, bank, d_obs, workers, replication, streams, requests,
                horizon):
    """Sustained identify throughput (requests/s) at one R."""
    n_avail = d_obs.shape[2]
    with _fabric(inv, bank, workers, replication, streams) as fab:
        fab.identify(d_obs[:, :, :streams], k_slots=horizon)  # warm
        t0 = time.perf_counter()
        for i in range(requests):
            j0 = (i * streams) % max(n_avail - streams, 1)
            fab.identify(d_obs[:, :, j0 : j0 + streams], k_slots=horizon)
        wall = time.perf_counter() - t0
        assert fab.report()["fabric_last_workers_lost"] == 0.0
    return requests / wall


def _failover_phase(inv, bank, d_obs, workers, streams, kills, horizon):
    """Scripted primary kills across respawn cycles at R=2."""
    healthy_ms, failover_ms = [], []
    lost_total = 0
    with _fabric(inv, bank, workers, 2, streams) as fab:
        reference = fab.identify(
            d_obs[:, :, :streams], k_slots=horizon
        ).log_evidence.copy()
        state = fab._resolve_bank(bank)
        n_groups = len(state.replicas)
        for i in range(kills):
            t0 = time.perf_counter()
            got = fab.identify(d_obs[:, :, :streams], k_slots=horizon)
            healthy_ms.append((time.perf_counter() - t0) * 1e3)
            assert np.array_equal(got.log_evidence, reference)

            # Kill the serving (first) replica of a rotating group, then
            # time the very next request — the failover happens inside it.
            primary = state.replicas[i % n_groups][0]
            assert fab.inject_fault(primary)
            t0 = time.perf_counter()
            got = fab.identify(d_obs[:, :, :streams], k_slots=horizon)
            failover_ms.append((time.perf_counter() - t0) * 1e3)
            rep = fab.last_report
            lost_total += rep.workers_lost
            assert rep.failovers >= 1, f"kill {i}: no failover recorded"
            assert rep.workers_lost == 0, (
                f"kill {i}: failover fell back to in-parent recompute"
            )
            assert np.array_equal(got.log_evidence, reference), (
                f"kill {i}: replica evidence diverged from the primary's"
            )
            assert fab.respawn_workers() >= 1
        counters = fab.report()
    return healthy_ms, failover_ms, counters, lost_total


def run_bench(
    nt, nx, nd, nq, scenarios, streams, horizon, workers, kills,
    requests, col_block=None, tiny=False,
) -> Dict[str, float]:
    old_block = sketch_mod.COL_BLOCK
    if col_block is not None:
        # Tiny banks must still span multiple shards per channel group.
        sketch_mod.COL_BLOCK = col_block
    try:
        inv, bank, d_obs = _build(nt, nx, nd, nq, scenarios)
        rps_r1 = _throughput(
            inv, bank, d_obs, workers, 1, streams, requests, horizon
        )
        rps_r2 = _throughput(
            inv, bank, d_obs, workers, 2, streams, requests, horizon
        )
        healthy_ms, failover_ms, counters, lost_total = _failover_phase(
            inv, bank, d_obs, workers, streams, kills, horizon
        )
    finally:
        sketch_mod.COL_BLOCK = old_block

    r = {
        "failover_latency_p50_ms": float(np.percentile(failover_ms, 50)),
        "failover_latency_p99_ms": float(np.percentile(failover_ms, 99)),
        "healthy_latency_p50_ms": float(np.percentile(healthy_ms, 50)),
        "throughput_r1_rps": float(rps_r1),
        "throughput_r2_rps": float(rps_r2),
        "replication_tax": float(rps_r1 / rps_r2),
        "kills": int(kills),
        "failovers": float(counters["fabric_failovers"]),
        "workers_lost": float(lost_total),
        "evidence_bitwise_identical": True,  # asserted per kill above
        "scenarios": int(scenarios),
        "workers": int(workers),
        "tiny": bool(tiny),
    }
    write_json("replication", r)
    write_report(
        "replication",
        "\n".join(
            [
                f"replicated shard failover (R=2, {workers} channels, "
                f"{scenarios} scenarios, {kills} scripted primary kills)",
                f"  failover latency: p50 {r['failover_latency_p50_ms']:.2f} ms, "
                f"p99 {r['failover_latency_p99_ms']:.2f} ms "
                f"(healthy p50 {r['healthy_latency_p50_ms']:.2f} ms)",
                f"  every kill absorbed by a replica: "
                f"failovers={int(r['failovers'])}, workers_lost=0, "
                "evidence bitwise-identical",
                f"  throughput: R=1 {rps_r1:7.1f} req/s, "
                f"R=2 {rps_r2:7.1f} req/s "
                f"(replication tax x{r['replication_tax']:.2f})",
            ]
        ),
    )
    return r


def test_replication_failover():
    r = run_bench(**TINY, tiny=True)
    assert r["failovers"] >= r["kills"]
    assert r["workers_lost"] == 0.0


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--tiny", action="store_true",
        help="smoke-test sizes (CI): same assertions, smaller workload",
    )
    args = ap.parse_args()
    r = run_bench(**(TINY if args.tiny else FULL), tiny=args.tiny)
    if r["workers_lost"] != 0.0:
        raise SystemExit(
            "replicated failover fell back to in-parent recompute "
            f"({r['workers_lost']} shard recomputes)"
        )


if __name__ == "__main__":
    main()
