"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper at
reduced scale: it measures the relevant quantities on the real reproduction
code, prints a paper-style table, and writes the same table to
``benchmarks/reports/<name>.txt`` so the results survive pytest's output
capture.  Shape-level agreement with the paper (who wins, by what factor)
is asserted; absolute numbers are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.twin.cascadia import CascadiaTwin
from repro.twin.config import TwinConfig

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def write_report(name: str, text: str) -> None:
    """Print a report and persist it under ``benchmarks/reports/``."""
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def write_json(name: str, payload: dict) -> pathlib.Path:
    """Persist machine-readable results as ``reports/BENCH_<name>.json``.

    CI uploads these as artifacts so the performance trajectory
    (throughput, certified fallback rates, sketch ranks, speedups) is
    tracked across PRs without parsing the human-readable tables.
    """
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def bench_twin():
    """A mid-size 2D twin, fully assembled once for the whole bench run."""
    cfg = TwinConfig.demo_2d(nx=16, n_slots=24, n_sensors=16, n_qoi=4, order=3)
    twin = CascadiaTwin(cfg)
    result = twin.run_end_to_end()
    return twin, result


@pytest.fixture(scope="session")
def bench_rng():
    """Deterministic RNG for benchmark inputs."""
    return np.random.default_rng(2025)
