"""Table III: compute time for each phase of inference and prediction.

Measures every phase of the reduced-scale twin and renders the same ledger
as the paper's Table III.  The shape claims asserted: Phase 1 (PDE solves)
dominates the offline cost; the online Phase 4 runs in a small fraction of
a second and is orders of magnitude cheaper than Phase 1.
"""

import time

import numpy as np
import pytest

from conftest import write_report


def test_table3_phase_ledger(bench_twin, benchmark):
    twin, result = bench_twin
    t = dict(twin.timers.as_dict())
    t.update(twin.inversion.timers.as_dict())

    # Benchmark the online Phase 4 (the paper's < 0.2 s claim).
    d_obs = result.d_obs
    online = benchmark(lambda: twin.inversion.infer_and_predict(d_obs))
    assert online is not None

    t_phase1 = t["Adjoint p2o"] + t["Adjoint p2q"]
    t_phase2 = t["Phase 2: form K"] + t["Phase 2: factorize K"]
    t_phase3 = t["Phase 3: QoI covariance"] + t["Phase 3: data-to-QoI map"]

    # Re-measure phase 4 wall time directly for the ledger.
    t0 = time.perf_counter()
    twin.inversion.infer_and_predict(d_obs)
    t_phase4 = time.perf_counter() - t0

    s = twin.problem_summary()
    rows = [
        ("1", "form F (Nd adjoint solves)", t["Adjoint p2o"], "600 x 52 m ~ 520 h"),
        ("1", "form Fq (Nq adjoint solves)", t["Adjoint p2q"], "21 x 52 m ~ 18 h"),
        ("2", "form K", t["Phase 2: form K"], "252k x 24 ms ~ 100 m"),
        ("2", "factorize K", t["Phase 2: factorize K"], "22 s"),
        ("3", "compute QoI covariance", t["Phase 3: QoI covariance"], "~25 m"),
        ("3", "compute Q: d -> q", t["Phase 3: data-to-QoI map"], "~25 m"),
        ("4", "infer + predict (online)", t_phase4, "< 0.2 s"),
    ]
    lines = [
        "TABLE III analogue - compute time per phase (reduced scale)",
        f"problem: Nd={s['n_sensors']:.0f} Nq={s['n_qoi']:.0f} Nt={s['n_slots']:.0f} "
        f"Nm={s['parameter_points']:.0f} (data dim {s['data_dimension']:.0f}, "
        f"parameter dim {s['parameter_dimension']:.0f})",
        f"{'Phase':>5s}  {'Task':<30s} {'measured':>12s}   {'paper (their scale)'}",
    ]
    for ph, task, sec, paper in rows:
        lines.append(f"{ph:>5s}  {task:<30s} {sec:>10.4f} s   {paper}")
    lines.append(
        f"offline/online ratio: {(t_phase1 + t_phase2 + t_phase3) / max(t_phase4, 1e-12):,.0f}x"
    )
    write_report("table3_phases", "\n".join(lines))

    # Shape assertions.
    assert t_phase1 > t_phase4 * 10, "Phase 1 must dominate the online solve"
    assert t_phase4 < 0.2, "online phase must run in under 0.2 s even here"


def test_online_inference_latency(bench_twin, benchmark):
    """Phase 4a alone (parameter MAP): the real-time path."""
    twin, result = bench_twin
    m = benchmark(twin.inversion.infer, result.d_obs)
    assert m.shape == (twin.config.n_slots, twin.operator.n_parameters)


def test_online_prediction_latency(bench_twin, benchmark):
    """Phase 4b alone (QoI forecast): a single small dense matvec."""
    twin, result = bench_twin
    fc = benchmark(twin.inversion.predict, result.d_obs)
    assert fc.mean.shape[1] == twin.qoi.n
