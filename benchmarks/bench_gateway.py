"""Ingest-gateway load generator: sustained req/s, dedup, rate limiting.

The gateway (:mod:`repro.serve.gateway`) is the admission tier in front
of the fabric's micro-batching queue — its job is to make *concurrency
control*, not math, the serving ceiling.  This load generator drives it
the way a warning deployment would and publishes the numbers CI tracks:

* **Throughput**: a closed-loop asyncio swarm of unique-key requests
  against a live fabric; sustained req/s asserted ``>= 200`` on the tiny
  profile, with p50/p99 admission-to-settlement latency.
* **Idempotency**: a retry storm (every key submitted several times)
  must be answered with exactly one fabric computation per key — the
  duplicates are served from the TTL cache's shared futures
  (``gateway_deduplicated`` counts them, and the fabric's request
  counter proves nothing was recomputed).
* **Rate limiting**: a burst fired at a tightly-bucketed gateway must
  reject the overflow before it touches the fabric
  (``gateway_rate_limited``), while everything under the limit succeeds.

Results go to ``benchmarks/reports/BENCH_gateway.json`` (sustained_rps,
latency_p50_ms, latency_p99_ms, deduplicated, rate_limited) — uploaded
by CI alongside the identify/fabric/orchestrator artifacts.

Run standalone (the CI smoke path) or under pytest::

    PYTHONPATH=src python benchmarks/bench_gateway.py [--tiny]
    PYTHONPATH=src python -m pytest benchmarks/bench_gateway.py -q
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import sys
import time
from typing import Dict

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from conftest import write_json, write_report  # noqa: E402

from repro.serve import ScenarioBank, ServingFabric  # noqa: E402
from repro.serve.gateway import IngestGateway  # noqa: E402
from repro.twin import CascadiaTwin, TwinConfig  # noqa: E402

FULL = dict(
    nt=24, nx=10, nd=10, nq=3, scenarios=256, requests=512,
    horizon=8, workers=2, max_batch=32, dedup_keys=16, dedup_repeat=4,
)
TINY = dict(
    nt=10, nx=8, nd=8, nq=3, scenarios=48, requests=160,
    horizon=5, workers=2, max_batch=16, dedup_keys=8, dedup_repeat=3,
)
MIN_RPS = 200.0


def _build(nt, nx, nd, nq, scenarios):
    cfg = TwinConfig.demo_2d(nx=nx, n_slots=nt, n_sensors=nd, n_qoi=nq)
    twin = CascadiaTwin(cfg).setup()
    twin.phase1()
    bank = ScenarioBank(twin.operator.bottom_trace, cfg.n_slots, cfg.dt_obs, seed=41)
    bank.generate(scenarios)
    d_clean, noise, d_obs = bank.observation_batch(
        twin.F, noise_relative=cfg.noise_relative
    )
    inv = twin.phase23(noise)
    return inv, bank, d_obs


async def _throughput_phase(gateway, d_obs, requests, horizon):
    """Closed-loop swarm of unique-key requests; returns (rps, latencies)."""
    n_avail = d_obs.shape[2]
    t0 = time.perf_counter()
    responses = await asyncio.gather(
        *(
            gateway.submit(
                d_obs[:, :, j % n_avail], horizon,
                idempotency_key=f"load-{j}",
            )
            for j in range(requests)
        )
    )
    wall = time.perf_counter() - t0
    assert all(r.status == "ok" for r in responses), (
        "throughput phase saw non-ok responses: "
        f"{sorted({r.status for r in responses})}"
    )
    lat_ms = np.array([r.latency_s for r in responses]) * 1e3
    return requests / wall, lat_ms


async def _dedup_phase(gateway, d_obs, horizon, keys, repeat):
    """Retry storm: each key submitted ``repeat`` times concurrently."""
    fabric_before = gateway.fabric.report()["fabric_requests"]
    dedup_before = gateway.counters.deduplicated
    n_avail = d_obs.shape[2]
    responses = await asyncio.gather(
        *(
            gateway.submit(
                d_obs[:, :, k % n_avail], horizon,
                idempotency_key=f"dedup-{k}",
            )
            for k in range(keys)
            for _ in range(repeat)
        )
    )
    assert all(r.status == "ok" for r in responses)
    deduplicated = gateway.counters.deduplicated - dedup_before
    assert deduplicated >= keys * (repeat - 1), (
        f"expected >= {keys * (repeat - 1)} deduplicated retries, "
        f"counted {deduplicated}"
    )
    # Retries share the original's result object — no recomputation.
    by_key: Dict[str, set] = {}
    for k_idx, resp in zip(
        [k for k in range(keys) for _ in range(repeat)], responses
    ):
        by_key.setdefault(f"dedup-{k_idx}", set()).add(id(resp.result))
    assert all(len(s) == 1 for s in by_key.values()), (
        "duplicate keys resolved to distinct result objects"
    )
    return int(deduplicated), gateway.fabric.report()["fabric_requests"] - fabric_before


async def _rate_limit_phase(inv, bank, d_obs, horizon, max_batch):
    """Overflow burst against a tight bucket: overflow rejected pre-fabric."""
    with ServingFabric(inv, [bank], n_workers=0, max_batch=max_batch) as fab:
        gateway = IngestGateway(fab, rate_rps=100.0, burst=8, flush_ms=2.0)
        fired = 40
        responses = await asyncio.gather(
            *(
                gateway.submit(d_obs[:, :, 0], horizon, idempotency_key=f"rl-{j}")
                for j in range(fired)
            )
        )
        accepted = sum(r.status == "ok" for r in responses)
        rejected = sum(r.status == "rejected" for r in responses)
        assert rejected == fired - accepted
        assert rejected > 0, "burst never exceeded the bucket; tighten it"
        assert accepted >= 8, "bucket rejected within-burst requests"
        assert gateway.counters.rate_limited == rejected
        return accepted, rejected


def run_bench(
    nt, nx, nd, nq, scenarios, requests, horizon, workers, max_batch,
    dedup_keys, dedup_repeat, tiny=False,
) -> Dict[str, float]:
    inv, bank, d_obs = _build(nt, nx, nd, nq, scenarios)

    async def _run():
        with ServingFabric(
            inv, [bank], n_workers=workers, max_batch=max_batch,
            screen_min_scenarios=1,
        ) as fab:
            gateway = IngestGateway(fab, flush_ms=2.0)
            rps, lat_ms = await _throughput_phase(
                gateway, d_obs, requests, horizon
            )
            deduplicated, dedup_fabric_reqs = await _dedup_phase(
                gateway, d_obs, horizon, dedup_keys, dedup_repeat
            )
            metrics_lines = gateway.metrics_text().count("\n")
        accepted, rejected = await _rate_limit_phase(
            inv, bank, d_obs, horizon, max_batch
        )
        return rps, lat_ms, deduplicated, dedup_fabric_reqs, \
            metrics_lines, accepted, rejected

    rps, lat_ms, deduplicated, dedup_fabric_reqs, metrics_lines, \
        accepted, rejected = asyncio.run(_run())

    r = {
        "sustained_rps": float(rps),
        "latency_p50_ms": float(np.percentile(lat_ms, 50)),
        "latency_p99_ms": float(np.percentile(lat_ms, 99)),
        "requests": int(requests),
        "deduplicated": int(deduplicated),
        "dedup_fabric_requests": float(dedup_fabric_reqs),
        "rate_limit_accepted": int(accepted),
        "rate_limited": int(rejected),
        "scenarios": int(scenarios),
        "max_batch": int(max_batch),
        "tiny": bool(tiny),
    }
    write_json("gateway", r)
    write_report(
        "gateway",
        "\n".join(
            [
                "ingest gateway load generation "
                f"({requests} requests x {scenarios} scenarios)",
                f"  sustained throughput: {rps:8.1f} req/s "
                f"(p50 {r['latency_p50_ms']:.2f} ms, "
                f"p99 {r['latency_p99_ms']:.2f} ms)",
                f"  idempotency: {deduplicated} retries deduplicated "
                f"across {dedup_keys} keys x{dedup_repeat} "
                f"({int(dedup_fabric_reqs)} fabric batch(es) computed)",
                f"  rate limiting: {rejected}/{accepted + rejected} "
                "over-limit requests rejected pre-fabric "
                "(rate 100 req/s, burst 8)",
                f"  metrics endpoint: {metrics_lines} exposition lines",
            ]
        ),
    )
    return r


def test_gateway_load():
    r = run_bench(**TINY, tiny=True)
    assert r["sustained_rps"] >= MIN_RPS, (
        f"gateway sustained {r['sustained_rps']:.0f} req/s < {MIN_RPS:.0f}"
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--tiny", action="store_true",
        help="smoke-test sizes (CI): same assertions, smaller workload",
    )
    args = ap.parse_args()
    r = run_bench(**(TINY if args.tiny else FULL), tiny=args.tiny)
    if r["sustained_rps"] < MIN_RPS:
        raise SystemExit(
            f"gateway sustained {r['sustained_rps']:.0f} req/s < {MIN_RPS:.0f}"
        )


if __name__ == "__main__":
    main()
