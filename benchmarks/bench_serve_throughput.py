"""Serving throughput: batched vs sequential Phase-4 solves (streams/sec).

The serving-layer claim: stacking ``k`` concurrent observation streams
into one BLAS-3 pass (one ``trsm`` + one batched FFT rmatvec + one
``gemm``) beats ``k`` sequential Phase-4 calls by a wide margin, because
the sequential path pays per-call Python/BLAS-2 overhead ``k`` times on
operators that are identical across streams.  Asserted: >= 5x streams/sec
at 64 concurrent streams.  This is the baseline every future
serving-throughput PR measures against.
"""

import time

import numpy as np
import pytest

from conftest import write_report

from repro.inference.noise import NoiseModel
from repro.serve import BatchedPhase4Server, ScenarioBank

N_STREAMS = 64
REPEATS = 5


def _best_of(fn, repeats=REPEATS):
    out = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        out.append(time.perf_counter() - t0)
    return min(out)


def test_batched_vs_sequential_phase4_throughput(bench_twin):
    twin, _ = bench_twin
    c = twin.config
    inv = twin.inversion

    bank = ScenarioBank(twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=3)
    bank.generate(N_STREAMS)
    d_clean, _, d_obs = bank.observation_batch(twin.F, noise_relative=c.noise_relative)
    server = BatchedPhase4Server(inv)

    def sequential():
        for j in range(N_STREAMS):
            inv.infer_and_predict(d_obs[:, :, j])

    def batched():
        server.infer_batch(d_obs)
        server.predict_batch(d_obs)

    sequential()
    batched()  # warm both paths (FFT plans, memoized operators)
    t_seq = _best_of(sequential)
    t_bat = _best_of(batched)
    speedup = t_seq / t_bat

    # Streaming fleet path: all streams advanced through every horizon.
    def fleet_streaming():
        for k_slots in range(1, c.n_slots + 1):
            server.forecast_partial_batch(d_obs, k_slots)

    fleet_streaming()  # memoize the per-horizon operators
    t_stream = _best_of(fleet_streaming)

    s = twin.problem_summary()
    lines = [
        "SERVING THROUGHPUT - batched vs sequential Phase 4",
        f"problem: Nd={s['n_sensors']:.0f} Nq={s['n_qoi']:.0f} "
        f"Nt={s['n_slots']:.0f} Nm={s['parameter_points']:.0f}, "
        f"{N_STREAMS} concurrent streams",
        f"{'path':<34s} {'time':>10s} {'streams/sec':>14s}",
        f"{'sequential infer+predict':<34s} {t_seq * 1e3:>8.2f} ms "
        f"{N_STREAMS / t_seq:>14,.0f}",
        f"{'batched (trsm + gemm)':<34s} {t_bat * 1e3:>8.2f} ms "
        f"{N_STREAMS / t_bat:>14,.0f}",
        f"{'fleet streaming (all horizons)':<34s} {t_stream * 1e3:>8.2f} ms "
        f"{N_STREAMS * s['n_slots'] / t_stream:>14,.0f}",
        f"batched speedup: {speedup:.1f}x",
    ]
    write_report("serve_throughput", "\n".join(lines))

    # Sanity: the fast path serves the same answers.
    m_batch = server.infer_batch(d_obs)
    m_seq = inv.infer(d_obs[:, :, 0])
    np.testing.assert_allclose(m_batch[:, :, 0], m_seq, rtol=0, atol=1e-10)

    assert speedup >= 5.0, f"batched serving speedup {speedup:.2f}x < 5x"
