"""Serving-fabric throughput: sharded hierarchical identification at 1024+.

The serving question at bank scale: requests arrive as *single* observation
streams, each asking "which of the bank's scenarios is this, and how
likely?"  The flat baseline answers each request with PR 3's exact
streaming identifier — open a session, advance to the horizon, read the
posterior — paying the per-request fixed costs (session setup, per-slot
solves, full-bank cross terms) once per stream.  The
:class:`~repro.serve.fabric.ServingFabric` admits the same requests
through its micro-batching queue and answers them in fused batches:
one shared fleet advance, one sharded two-stage (coarse screen -> exact on
survivors) identification pass across the worker pool, all bank state in
shared memory under a stated :class:`~repro.util.memory.MemoryBudget`.

Measured here, against a >= 1024-scenario bank:

* end-to-end request throughput (streams/sec), fabric (4 workers,
  certified sketch screen) vs single-process exact identification —
  asserted >= 3x (the gain compounds micro-batch fusion with
  hierarchical pruning; on multi-core hosts shard parallelism adds on
  top);
* certified equivalence: the fabric's certified top-k is *identical* to
  the exhaustive exact ranking for every request — asserted, with the
  sketch screen enabled;
* the **certified fallback rate on a diverse-batch workload**: batches of
  streams drawn from across the bank union their candidate sets, and the
  norm-only brackets routinely union them past the full-exact fallback
  threshold (``FabricReport.screen_fallback``).  The sketch-tightened
  brackets (:mod:`repro.serve.sketch`) keep the candidate sets sharp —
  asserted: the fallback rate drops by >= 2x vs the norm-only screen on
  the same fabric and the same requests.

Everything is also emitted machine-readably to
``benchmarks/reports/BENCH_fabric.json`` (throughput, certified fallback
rates, sketch rank) — CI uploads it so the perf trajectory is tracked
across PRs.  The JSON also carries a ``backend`` section: the fabric's
parent-side array backend (``FabricConfig.backend``), its declared screen
rtol, and the fabric-serve phase priced against that backend's online
roofline (:data:`repro.hpc.perfmodel.ONLINE_ROOFLINES`) as an achieved
fraction-of-attainable — the analytic kernel floor of the fused
fleet-advance + cross-term work, so routing regressions surface as an
efficiency drop even when raw times drift with the host.

Run standalone (the CI smoke path) or under pytest::

    PYTHONPATH=src python benchmarks/bench_fabric.py [--tiny]
    PYTHONPATH=src python -m pytest benchmarks/bench_fabric.py -q
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Dict

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from conftest import write_json, write_report  # noqa: E402

from repro.hpc.perfmodel import gemm_spec, roofline_for, trsm_spec  # noqa: E402
from repro.serve import BatchedPhase4Server, ScenarioBank  # noqa: E402
from repro.twin import CascadiaTwin, TwinConfig  # noqa: E402
from repro.util.memory import MIB  # noqa: E402

FULL = dict(
    nt=64, nx=12, nd=16, nq=3, scenarios=1024, requests=128,
    horizon=16, workers=4, max_batch=32, budget_mib=64, top=8,
    sketch_rank=12, diverse_batches=8, diverse_batch_size=8,
    mode_rank=6, mode_probes=8, autotune_warmup=48,
)
TINY = dict(
    nt=10, nx=6, nd=6, nq=2, scenarios=32, requests=8,
    horizon=5, workers=2, max_batch=4, budget_mib=16, top=3,
    sketch_rank=4, diverse_batches=2, diverse_batch_size=3,
    mode_rank=2, mode_probes=3, autotune_warmup=12,
)
MIN_SPEEDUP = 3.0
MIN_FALLBACK_IMPROVEMENT = 2.0
# Noise floor on the "auto rank matches hand-tuned throughput" equality
# gate: both sides are best-of-REPS of the same converged configuration,
# so anything below this is a real regression, not timer jitter.
MIN_AUTO_VS_STATIC = 0.95
REPS = 3


def _build(nt, nx, nd, nq, scenarios):
    cfg = TwinConfig.demo_2d(nx=nx, n_slots=nt, n_sensors=nd, n_qoi=nq)
    twin = CascadiaTwin(cfg).setup()
    twin.phase1()
    bank = ScenarioBank(twin.operator.bottom_trace, cfg.n_slots, cfg.dt_obs, seed=29)
    bank.generate(scenarios)
    d_clean, noise, d_obs = bank.observation_batch(
        twin.F, noise_relative=cfg.noise_relative
    )
    inv = twin.phase23(noise)
    return inv, bank, d_obs


def baseline_serve(server, bank, d_obs, requests, horizon):
    """Single-process exact identification, one request at a time.

    The bank-side identifier state is memoized (an offline cost both paths
    amortize identically); each request pays its own session, fleet
    advance, full-bank evidence, and posterior read.
    """
    ident = server.scenario_identifier(bank)
    n_avail = d_obs.shape[2]
    out = []
    for j in range(requests):
        session = ident.open(d_obs[:, :, j % n_avail : j % n_avail + 1])
        session.advance(horizon)
        out.append(session.posterior())
    return out


def fabric_serve(fabric, d_obs, requests, horizon):
    """The same requests through the fabric's micro-batching queue."""
    n_avail = d_obs.shape[2]
    tickets = [
        fabric.submit(d_obs[:, :, j % n_avail], horizon) for j in range(requests)
    ]
    fabric.flush()
    return [t.result() for t in tickets]


def fallback_rate(fabric, d_obs, horizon, n_batches, batch_size, use_sketch):
    """Certified fallback rate over a diverse-batch workload.

    Each batch stacks ``batch_size`` streams of *different* scenarios
    (spread across the bank), the traffic shape that unions per-stream
    candidate sets toward the whole bank.  Returns the fraction of
    batches the certified screen abandoned for the full exact pass.
    """
    n_avail = d_obs.shape[2]
    stride = max(n_avail // (n_batches * batch_size), 1)
    fallbacks = 0
    for b in range(n_batches):
        cols = [(b * batch_size + j) * stride % n_avail for j in range(batch_size)]
        fabric.identify(d_obs[:, :, cols], k_slots=horizon, sketch=use_sketch)
        fallbacks += bool(fabric.last_report.screen_fallback)
    return fallbacks / n_batches


def _mean_bracket_width(fabric, bank) -> float:
    """Mean certified bracket width of the last single-stream screen."""
    v = fabric._resolve_bank(bank).views
    return float(np.mean(v["ub"][:1] - v["lb"][:1]))


def mode_comparison(
    server, bank, d_obs, horizon, rank, workers, max_batch, top, n_probe
) -> Dict[str, object]:
    """Bank-PCA vs Gaussian projections at *equal* rank.

    Same bank, same requests, same rank — only
    ``FabricConfig.sketch_mode`` differs.  For each mode: the mean
    certified bracket width ``mean(ub - lb)`` over the full bank, the
    mean single-stream pruned fraction, and a certified-equivalence
    check of the screened top-``top`` against the exhaustive exact
    ranking on the same fabric.  Eckart–Young says the PCA rows minimize
    the bank-side remainder energy at fixed rank, so PCA must tighten
    the mean bracket and prune at least as hard — asserted by the
    caller via ``pca_tightens`` / ``pca_prunes_no_worse``.
    """
    n_avail = d_obs.shape[2]
    stride = max(n_avail // max(n_probe, 1), 1)
    per_mode: Dict[str, Dict[str, object]] = {}
    for mode in ("gaussian", "pca"):
        with server.fabric(
            [bank], n_workers=workers, max_batch=max_batch, screen_top=top,
            certified=True, screen_stride=2, sketch_rank=rank,
            sketch_mode=mode,
        ) as f:
            widths, pruned, topk_ok = [], [], True
            for i in range(n_probe):
                j = (i * stride) % n_avail
                got = f.identify(d_obs[:, :, j : j + 1], k_slots=horizon)
                assert f.last_report.sketch_mode == mode
                widths.append(_mean_bracket_width(f, bank))
                pruned.append(float(f.last_report.pruned_fraction))
                exact = f.identify(
                    d_obs[:, :, j : j + 1], k_slots=horizon, screen=False
                )
                gk = [s for s, _ in got.top_k(top)[0]]
                ek = [s for s, _ in exact.top_k(top)[0]]
                topk_ok = topk_ok and gk == ek
            per_mode[mode] = {
                "mean_bracket_width": float(np.mean(widths)),
                "pruned_fraction": float(np.mean(pruned)),
                "certified_topk_identical": bool(topk_ok),
            }
    g, p = per_mode["gaussian"], per_mode["pca"]
    return {
        "rank": rank,
        "probes": n_probe,
        "gaussian": g,
        "pca": p,
        "width_tightening": (
            g["mean_bracket_width"] / p["mean_bracket_width"]
            if p["mean_bracket_width"] > 0
            else "inf"
        ),
        "pca_tightens": p["mean_bracket_width"] < g["mean_bracket_width"],
        "pca_prunes_no_worse": p["pruned_fraction"] >= g["pruned_fraction"],
    }


def autotune_bench(
    server, bank, d_obs, requests, horizon, workers, max_batch, top,
    warmup, baseline_rank,
) -> Dict[str, object]:
    """``sketch_rank="auto"`` convergence + throughput vs the pinned rank.

    Feeds ``warmup`` single-stream requests through an auto-rank PCA
    fabric (the controller's telemetry window), then warms on the
    *micro-batched* workload until a full pass commits no retune — the
    controller re-converges for batched traffic (whose unioned candidate
    sets need more rank than single streams) — and only then measures
    best-of-``REPS`` throughput on the same workload the pinned-rank
    fabric ran.  A certified top-k spot check guards against a retune
    ever trading correctness for rank.
    """
    with server.fabric(
        [bank], n_workers=workers, max_batch=max_batch, screen_top=top,
        certified=True, screen_stride=4, sketch_rank="auto",
        sketch_mode="pca",
    ) as f:
        n_avail = d_obs.shape[2]
        for i in range(warmup):
            j = i % n_avail
            f.identify(d_obs[:, :, j : j + 1], k_slots=horizon)
        single_rank = int(f.report()["fabric_sketch_rank"])
        batch_passes = 0
        for _ in range(10):
            before = f.report()["fabric_sketch_retunes"]
            fabric_serve(f, d_obs, requests, horizon)
            batch_passes += 1
            if f.report()["fabric_sketch_retunes"] == before:
                break
        history = f.rank_history()
        converged_rank = int(f.report()["fabric_sketch_rank"])
        retunes = int(f.report()["fabric_sketch_retunes"])

        t_auto = min(
            _timed(lambda: fabric_serve(f, d_obs, requests, horizon))
            for _ in range(REPS)
        )
        for j in (0, n_avail // 2):
            got = f.identify(d_obs[:, :, j : j + 1], k_slots=horizon)
            exact = f.identify(
                d_obs[:, :, j : j + 1], k_slots=horizon, screen=False
            )
            gk = [s for s, _ in got.top_k(top)[0]]
            ek = [s for s, _ in exact.top_k(top)[0]]
            assert gk == ek, (
                f"auto-rank certified top-{top} diverged post-retune"
            )
    return {
        "warmup_requests": warmup,
        "warmup_batch_passes": batch_passes,
        "baseline_rank": baseline_rank,
        "single_stream_rank": single_rank,
        "converged_rank": converged_rank,
        "retunes": retunes,
        "rank_history": history,
        "t_auto_s": t_auto,
        "throughput_rps_auto": requests / t_auto,
    }


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _serve_spec(nd, nb, requests, S, horizon):
    """Analytic kernel floor of serving every request to ``horizon``.

    The fused work the fabric cannot avoid, regardless of batching or
    screening: per absorbed slot, the fleet-advance history gemm, the
    ``Nd x Nd`` blocked trsm, the running-means gemm, and the evidence
    cross-term gemm against the full bank — counted once per request
    (micro-batch fusion shares the calls, not the flops).  Screening
    only *removes* bank columns from the cross terms, so this is a
    floor and the achieved fraction-of-attainable stays <= 1.
    """
    spec = trsm_spec(nd, requests)  # slot 0 has no history gemm
    spec = spec + gemm_spec(nb, requests, nd) + gemm_spec(requests, S, nd)
    for s in range(1, horizon):
        spec = spec + gemm_spec(nd, requests, s * nd)  # history gemm
        spec = spec + trsm_spec(nd, requests)  # diagonal-block solve
        spec = spec + gemm_spec(nb, requests, nd)  # means: Y^T w_new
        spec = spec + gemm_spec(requests, S, nd)  # cross terms vs the bank
    return spec


def run_bench(
    nt, nx, nd, nq, scenarios, requests, horizon, workers, max_batch,
    budget_mib, top, sketch_rank, diverse_batches, diverse_batch_size,
    mode_rank, mode_probes, autotune_warmup,
    tiny=False,
) -> Dict[str, float]:
    inv, bank, d_obs = _build(nt, nx, nd, nq, scenarios)
    server = BatchedPhase4Server(inv)

    budget = int(budget_mib * MIB)
    with server.fabric(
        [bank], n_workers=workers, max_batch=max_batch, screen_top=top,
        certified=True, screen_stride=4, sketch_rank=sketch_rank,
        memory_budget=budget,
    ) as fabric:
        assert fabric.state_nbytes() <= budget, "fabric exceeds stated budget"

        # Warm both paths (identifier build, worker attach, BLAS warmup).
        fabric.identify(d_obs[:, :, :2], k_slots=horizon)
        base_warm = baseline_serve(server, bank, d_obs, 2, horizon)

        t0 = time.perf_counter()
        base = baseline_serve(server, bank, d_obs, requests, horizon)
        t_base = time.perf_counter() - t0

        t0 = time.perf_counter()
        fab = fabric_serve(fabric, d_obs, requests, horizon)
        t_fab = time.perf_counter() - t0
        batch_report = fabric.last_report
        # Best-of-REPS on the warm fabric: the hand-tuned static-rank
        # throughput the auto-rank fabric must match.
        t_fab_best = min(
            [t_fab]
            + [
                _timed(lambda: fabric_serve(fabric, d_obs, requests, horizon))
                for _ in range(REPS - 1)
            ]
        )

        # Certified equivalence: fabric top-k (sketch screen enabled)
        # identical to the exhaustive exact ranking, for every request.
        for b, f in zip(base, fab):
            bk = [s for s, _ in b.top_k(top)[0]]
            fk = [s for s, _ in f.top_k(top)[0]]
            assert bk == fk, f"certified top-{top} diverged: {bk} vs {fk}"

        # Diverse-batch workload: certified fallback rate, norm-only
        # brackets vs the sketch-tightened ones (same fabric, same
        # requests — `sketch=` is a per-call override).
        fb_norm = fallback_rate(
            fabric, d_obs, horizon, diverse_batches, diverse_batch_size, False
        )
        fb_sketch = fallback_rate(
            fabric, d_obs, horizon, diverse_batches, diverse_batch_size, True
        )

        # Certified pruning on single-stream requests (sharp candidate
        # sets), norm vs sketch.
        fabric.config.screen_stride = 2
        fabric.identify(d_obs[:, :, :1], k_slots=horizon, sketch=False)
        single_norm = fabric.last_report
        fabric.identify(d_obs[:, :, :1], k_slots=horizon)
        single_sketch = fabric.last_report

        shared_mib = fabric.state_nbytes() / MIB
        workers_alive = fabric.report()["fabric_workers_alive"]

        # Price the fabric-serve phase against the parent backend's
        # online roofline (kernel floor of the fused identification work).
        roof = roofline_for(fabric.backend.name)
        spec = _serve_spec(nd, fabric.engine._nb, requests, scenarios, horizon)
        backend_info = {
            "name": fabric.backend.name,
            "device": roof.device,
            "screen_rtol": float(fabric.backend.screen_rtol),
            "is_exact": bool(fabric.backend.is_exact),
            "kernel_gflop": spec.flops / 1e9,
            "arithmetic_intensity": spec.arithmetic_intensity(),
            "attainable_ms": roof.attainable_seconds(spec) * 1e3,
            "fraction_of_attainable": roof.fraction_of_attainable(spec, t_fab),
        }

    # Bank-PCA vs Gaussian at equal rank, and online rank auto-tuning
    # vs the hand-tuned static rank — each on its own fabric, after the
    # main fabric released its workers.
    mode = mode_comparison(
        server, bank, d_obs, horizon, mode_rank, workers, max_batch, top,
        mode_probes,
    )
    auto = autotune_bench(
        server, bank, d_obs, requests, horizon, workers, max_batch, top,
        autotune_warmup, sketch_rank,
    )
    auto["throughput_rps_static"] = requests / t_fab_best
    auto["auto_vs_static"] = t_fab_best / auto["t_auto_s"]

    speedup = t_base / t_fab
    improvement = fb_norm / fb_sketch if fb_sketch > 0 else float("inf")
    lines = [
        "SERVING FABRIC - sharded hierarchical identification vs flat exact",
        f"problem: Nt={nt} Nd={nd} nx={nx}, bank of {scenarios} scenarios, "
        f"{requests} single-stream requests at horizon {horizon}",
        f"fabric: {workers} workers ({workers_alive:.0f} alive), micro-batch "
        f"{max_batch}, certified sketch screen (top-{top}, r={sketch_rank}), "
        f"{shared_mib:.1f} MiB shared of {budget_mib} MiB budget",
        f"{'path':<46s} {'time':>10s} {'throughput':>14s}",
        f"{'single-process exact (per-request sessions)':<46s} "
        f"{t_base * 1e3:>8.1f} ms {requests / t_base:>10.0f} req/s",
        f"{'fabric (micro-batched, screened, sharded)':<46s} "
        f"{t_fab * 1e3:>8.1f} ms {requests / t_fab:>10.0f} req/s",
        f"speedup: {speedup:.1f}x   (certified top-{top} identical to "
        f"exhaustive on all {requests} requests)",
        f"batched screen: {batch_report.n_candidates}/{scenarios} candidates"
        + (" (fell back to full exact)" if batch_report.screen_fallback else ""),
        f"diverse-batch certified fallback rate "
        f"({diverse_batches} x {diverse_batch_size}-stream batches): "
        f"norm-only {100 * fb_norm:.0f}% -> sketch {100 * fb_sketch:.0f}% "
        f"({improvement:.1f}x fewer fallbacks)"
        if np.isfinite(improvement)
        else f"diverse-batch certified fallback rate: norm-only "
        f"{100 * fb_norm:.0f}% -> sketch 0% (fallbacks eliminated)",
        f"single-stream certified screen: norm-only "
        f"{single_norm.n_candidates}/{scenarios} candidates "
        f"({100 * single_norm.pruned_fraction:.0f}% pruned) -> sketch "
        f"{single_sketch.n_candidates}/{scenarios} "
        f"({100 * single_sketch.pruned_fraction:.0f}% pruned)",
        f"backend: {backend_info['name']} ({backend_info['device']}, "
        f"screen rtol {backend_info['screen_rtol']:.1e}) — serve phase "
        f"{t_fab * 1e3:.1f} ms vs {backend_info['attainable_ms']:.2f} ms "
        f"attainable ({backend_info['fraction_of_attainable']:.3f} of roofline)",
        f"sketch mode at r={mode_rank}: gaussian bracket width "
        f"{mode['gaussian']['mean_bracket_width']:.3f} "
        f"({100 * mode['gaussian']['pruned_fraction']:.0f}% pruned) -> "
        f"bank-PCA {mode['pca']['mean_bracket_width']:.3f} "
        f"({100 * mode['pca']['pruned_fraction']:.0f}% pruned), "
        f"{mode['width_tightening'] if isinstance(mode['width_tightening'], str) else format(mode['width_tightening'], '.2f')}x tighter",
        f"auto rank (PCA, {autotune_warmup}-request warmup): converged to "
        f"r={auto['converged_rank']} in {auto['retunes']} retunes; "
        f"throughput {auto['throughput_rps_auto']:.0f} req/s vs hand-tuned "
        f"r={sketch_rank} {auto['throughput_rps_static']:.0f} req/s "
        f"({auto['auto_vs_static']:.2f}x)",
    ]
    write_report("fabric", "\n".join(lines))
    write_json("fabric", {
        "bench": "fabric",
        "scenarios": scenarios,
        "requests": requests,
        "horizon": horizon,
        "workers": workers,
        "max_batch": max_batch,
        "sketch_rank": sketch_rank,
        "throughput_rps_exact": requests / t_base,
        "throughput_rps_fabric": requests / t_fab,
        "speedup": speedup,
        "certified_topk_identical": True,
        "certified_fallback_rate_norm": fb_norm,
        "certified_fallback_rate_sketch": fb_sketch,
        # Finite ratio, or the explicit "inf" sentinel when the sketch
        # screen eliminated every fallback the norm-only screen hit —
        # never null, so trajectory tooling can always gate on it.
        "fallback_improvement": (
            improvement if np.isfinite(improvement) else "inf"
        ),
        "single_stream_pruned_fraction_norm": single_norm.pruned_fraction,
        "single_stream_pruned_fraction_sketch": single_sketch.pruned_fraction,
        "shared_mib": shared_mib,
        "budget_mib": budget_mib,
        "backend": backend_info,
        "report_backend": batch_report.backend,
        "sketch_mode": mode,
        "auto_rank": auto,
        "tiny": tiny,
    })
    return {
        "t_base": t_base,
        "t_fabric": t_fab,
        "speedup": speedup,
        "fallback_norm": fb_norm,
        "fallback_sketch": fb_sketch,
        "fallback_improvement": improvement,
        "single_pruned": single_sketch.pruned_fraction,
        "mode": mode,
        "auto": auto,
    }


def _check_fallback_improvement(r) -> None:
    """The sketch screen must at least halve the certified fallback rate."""
    assert r["fallback_norm"] > 0, (
        "diverse-batch workload never tripped the norm-only fallback; "
        "the comparison is vacuous — grow the batches"
    )
    assert r["fallback_sketch"] * MIN_FALLBACK_IMPROVEMENT <= r["fallback_norm"], (
        f"sketch screen fallback rate {r['fallback_sketch']:.2f} not "
        f">= {MIN_FALLBACK_IMPROVEMENT}x below norm-only {r['fallback_norm']:.2f}"
    )
    # The gated ratio is what lands in the JSON (as a float or "inf").
    assert r["fallback_improvement"] >= MIN_FALLBACK_IMPROVEMENT


def _check_sketch_mode(mode) -> None:
    """Bank-PCA at equal rank must strictly tighten and never prune less."""
    assert mode["gaussian"]["certified_topk_identical"]
    assert mode["pca"]["certified_topk_identical"], (
        "PCA-screened certified top-k diverged from exhaustive"
    )
    assert mode["pca_tightens"], (
        f"PCA bracket width {mode['pca']['mean_bracket_width']:.4f} not "
        f"tighter than Gaussian {mode['gaussian']['mean_bracket_width']:.4f} "
        f"at equal rank {mode['rank']}"
    )
    assert mode["pca_prunes_no_worse"], (
        f"PCA pruned fraction {mode['pca']['pruned_fraction']:.3f} below "
        f"Gaussian {mode['gaussian']['pruned_fraction']:.3f} at equal rank"
    )


def _check_auto_rank(auto) -> None:
    """Auto rank must converge and match the hand-tuned throughput."""
    assert auto["retunes"] >= 1, "auto rank never left r_min"
    assert auto["auto_vs_static"] >= MIN_AUTO_VS_STATIC, (
        f"auto-rank throughput {auto['throughput_rps_auto']:.0f} req/s is "
        f"{auto['auto_vs_static']:.2f}x the hand-tuned "
        f"r={auto['baseline_rank']} baseline "
        f"{auto['throughput_rps_static']:.0f} req/s "
        f"(< {MIN_AUTO_VS_STATIC})"
    )


def test_fabric_throughput():
    r = run_bench(**FULL)
    assert r["speedup"] >= MIN_SPEEDUP, (
        f"fabric speedup {r['speedup']:.2f}x < {MIN_SPEEDUP}x"
    )
    _check_fallback_improvement(r)
    _check_sketch_mode(r["mode"])
    _check_auto_rank(r["auto"])


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--tiny",
        action="store_true",
        help="smoke-test sizes (CI): correctness/equivalence only, no "
        "speedup or fallback-rate assertion",
    )
    args = ap.parse_args()
    r = run_bench(**(TINY if args.tiny else FULL), tiny=args.tiny)
    if not args.tiny:
        if r["speedup"] < MIN_SPEEDUP:
            raise SystemExit(f"speedup {r['speedup']:.2f}x < {MIN_SPEEDUP}x")
        _check_fallback_improvement(r)
        _check_sketch_mode(r["mode"])
        _check_auto_rank(r["auto"])
    else:
        # Tiny smoke gates correctness only (timings are noise at this
        # size): both sketch modes and the auto-rank fabric must carry
        # the exhaustive top-k.
        assert r["mode"]["gaussian"]["certified_topk_identical"]
        assert r["mode"]["pca"]["certified_topk_identical"]
        assert r["mode"]["pca_prunes_no_worse"]


if __name__ == "__main__":
    main()
