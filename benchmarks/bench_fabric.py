"""Serving-fabric throughput: sharded hierarchical identification at 1024+.

The serving question at bank scale: requests arrive as *single* observation
streams, each asking "which of the bank's scenarios is this, and how
likely?"  The flat baseline answers each request with PR 3's exact
streaming identifier — open a session, advance to the horizon, read the
posterior — paying the per-request fixed costs (session setup, per-slot
solves, full-bank cross terms) once per stream.  The
:class:`~repro.serve.fabric.ServingFabric` admits the same requests
through its micro-batching queue and answers them in fused batches:
one shared fleet advance, one sharded two-stage (coarse screen -> exact on
survivors) identification pass across the worker pool, all bank state in
shared memory under a stated :class:`~repro.util.memory.MemoryBudget`.

Measured here, against a >= 1024-scenario bank:

* end-to-end request throughput (streams/sec), fabric (4 workers,
  certified screen) vs single-process exact identification — asserted
  >= 3x (the gain compounds micro-batch fusion with hierarchical pruning;
  on multi-core hosts shard parallelism adds on top);
* certified equivalence: the fabric's certified top-k is *identical* to
  the exhaustive exact ranking for every request — asserted;
* certified pruning power on single-stream requests (diverse batches
  union their candidate sets, single streams keep them sharp).

Run standalone (the CI smoke path) or under pytest::

    PYTHONPATH=src python benchmarks/bench_fabric.py [--tiny]
    PYTHONPATH=src python -m pytest benchmarks/bench_fabric.py -q
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Dict

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from conftest import write_report  # noqa: E402

from repro.serve import BatchedPhase4Server, ScenarioBank  # noqa: E402
from repro.twin import CascadiaTwin, TwinConfig  # noqa: E402
from repro.util.memory import MIB  # noqa: E402

FULL = dict(
    nt=64, nx=12, nd=16, nq=3, scenarios=1024, requests=128,
    horizon=16, workers=4, max_batch=32, budget_mib=64, top=8,
)
TINY = dict(
    nt=10, nx=6, nd=6, nq=2, scenarios=32, requests=8,
    horizon=5, workers=2, max_batch=4, budget_mib=16, top=3,
)
MIN_SPEEDUP = 3.0


def _build(nt, nx, nd, nq, scenarios):
    cfg = TwinConfig.demo_2d(nx=nx, n_slots=nt, n_sensors=nd, n_qoi=nq)
    twin = CascadiaTwin(cfg).setup()
    twin.phase1()
    bank = ScenarioBank(twin.operator.bottom_trace, cfg.n_slots, cfg.dt_obs, seed=29)
    bank.generate(scenarios)
    d_clean, noise, d_obs = bank.observation_batch(
        twin.F, noise_relative=cfg.noise_relative
    )
    inv = twin.phase23(noise)
    return inv, bank, d_obs


def baseline_serve(server, bank, d_obs, requests, horizon):
    """Single-process exact identification, one request at a time.

    The bank-side identifier state is memoized (an offline cost both paths
    amortize identically); each request pays its own session, fleet
    advance, full-bank evidence, and posterior read.
    """
    ident = server.scenario_identifier(bank)
    n_avail = d_obs.shape[2]
    out = []
    for j in range(requests):
        session = ident.open(d_obs[:, :, j % n_avail : j % n_avail + 1])
        session.advance(horizon)
        out.append(session.posterior())
    return out


def fabric_serve(fabric, d_obs, requests, horizon):
    """The same requests through the fabric's micro-batching queue."""
    n_avail = d_obs.shape[2]
    tickets = [
        fabric.submit(d_obs[:, :, j % n_avail], horizon) for j in range(requests)
    ]
    fabric.flush()
    return [t.result() for t in tickets]


def run_bench(
    nt, nx, nd, nq, scenarios, requests, horizon, workers, max_batch,
    budget_mib, top, tiny=False,
) -> Dict[str, float]:
    inv, bank, d_obs = _build(nt, nx, nd, nq, scenarios)
    server = BatchedPhase4Server(inv)

    budget = int(budget_mib * MIB)
    with server.fabric(
        [bank], n_workers=workers, max_batch=max_batch, screen_top=top,
        certified=True, screen_stride=4, memory_budget=budget,
    ) as fabric:
        assert fabric.state_nbytes() <= budget, "fabric exceeds stated budget"

        # Warm both paths (identifier build, worker attach, BLAS warmup).
        fabric.identify(d_obs[:, :, :2], k_slots=horizon)
        base_warm = baseline_serve(server, bank, d_obs, 2, horizon)

        t0 = time.perf_counter()
        base = baseline_serve(server, bank, d_obs, requests, horizon)
        t_base = time.perf_counter() - t0

        t0 = time.perf_counter()
        fab = fabric_serve(fabric, d_obs, requests, horizon)
        t_fab = time.perf_counter() - t0
        batch_report = fabric.last_report

        # Certified equivalence: fabric top-k identical to the exhaustive
        # exact ranking, for every request.
        for b, f in zip(base, fab):
            bk = [s for s, _ in b.top_k(top)[0]]
            fk = [s for s, _ in f.top_k(top)[0]]
            assert bk == fk, f"certified top-{top} diverged: {bk} vs {fk}"

        # Certified pruning on single-stream requests (sharp candidate
        # sets; batches of diverse streams union theirs away).
        fabric.config.screen_stride = 2
        fabric.identify(d_obs[:, :, :1], k_slots=horizon)
        single_report = fabric.last_report

        shared_mib = fabric.state_nbytes() / MIB
        workers_alive = fabric.report()["fabric_workers_alive"]

    speedup = t_base / t_fab
    lines = [
        "SERVING FABRIC - sharded hierarchical identification vs flat exact",
        f"problem: Nt={nt} Nd={nd} nx={nx}, bank of {scenarios} scenarios, "
        f"{requests} single-stream requests at horizon {horizon}",
        f"fabric: {workers} workers ({workers_alive:.0f} alive), micro-batch "
        f"{max_batch}, certified screen (top-{top}), "
        f"{shared_mib:.1f} MiB shared of {budget_mib} MiB budget",
        f"{'path':<46s} {'time':>10s} {'throughput':>14s}",
        f"{'single-process exact (per-request sessions)':<46s} "
        f"{t_base * 1e3:>8.1f} ms {requests / t_base:>10.0f} req/s",
        f"{'fabric (micro-batched, screened, sharded)':<46s} "
        f"{t_fab * 1e3:>8.1f} ms {requests / t_fab:>10.0f} req/s",
        f"speedup: {speedup:.1f}x   (certified top-{top} identical to "
        f"exhaustive on all {requests} requests)",
        f"batched screen: {batch_report.n_candidates}/{scenarios} candidates"
        + (" (fell back to full exact)" if batch_report.screen_fallback else ""),
        f"single-stream certified screen: {single_report.n_candidates}/"
        f"{scenarios} candidates ({100 * single_report.pruned_fraction:.0f}% "
        f"pruned, certified)",
    ]
    write_report("fabric", "\n".join(lines))
    return {
        "t_base": t_base,
        "t_fabric": t_fab,
        "speedup": speedup,
        "single_pruned": single_report.pruned_fraction,
    }


def test_fabric_throughput():
    r = run_bench(**FULL)
    assert r["speedup"] >= MIN_SPEEDUP, (
        f"fabric speedup {r['speedup']:.2f}x < {MIN_SPEEDUP}x"
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--tiny",
        action="store_true",
        help="smoke-test sizes (CI): correctness/equivalence only, no "
        "speedup assertion",
    )
    args = ap.parse_args()
    r = run_bench(**(TINY if args.tiny else FULL), tiny=args.tiny)
    if not args.tiny and r["speedup"] < MIN_SPEEDUP:
        raise SystemExit(f"speedup {r['speedup']:.2f}x < {MIN_SPEEDUP}x")


if __name__ == "__main__":
    main()
